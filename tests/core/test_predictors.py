"""The predictor registry and its contract across every layer.

The pluggable-predictor refactor made prediction a first-class stage:
registry (predictors.py), container tag (format.py), codec dispatch
(compressor.py/decompressor.py), fused fast path (fastpath.py), shard
engine (parallel.py), random access (access.py), and plan IR / lowering
(plan.py/lower.py). This suite pins the cross-layer property: any stream
written with any registered predictor under any container layout decodes
with a *plain* ``CereSZ()`` — dispatch is purely header-driven — within
the error bound; plus the locality-contract diagnostics, the byte-identity
guarantees (fast vs reference, jobs-invariance, wafer vs host), and the
format-level canonical-encoding rules.
"""

import numpy as np
import pytest

from repro.core.compressor import CereSZ
from repro.core.format import (
    FLAG_ND_PREDICTOR,
    FLAG_PREDICTOR_ID,
    StreamHeader,
    make_header,
)
from repro.core.parallel import is_sharded
from repro.core.predictors import (
    BLOCK_LOCAL,
    WHOLE_ARRAY,
    get_predictor,
    predictor_from_tag,
    predictor_names,
    registered_predictors,
)
from repro.errors import CompressionError, FormatError, ScheduleError

ALL_PREDICTORS = predictor_names()
BLOCK_LOCAL_PREDICTORS = tuple(
    p.name for p in registered_predictors() if p.block_local
)
WHOLE_ARRAY_PREDICTORS = tuple(
    p.name for p in registered_predictors() if not p.block_local
)


def _field(shape, dtype, kind="smooth", seed=0):
    rng = np.random.default_rng(seed)
    if kind == "zero":
        return np.zeros(shape, dtype=dtype)
    idx = np.indices(shape).astype(np.float64)
    smooth = 100.0 + sum(
        np.sin(g / (3.0 + i)) for i, g in enumerate(idx)
    )
    smooth += 0.05 * rng.standard_normal(shape)
    return smooth.astype(dtype)


# --- registry ---------------------------------------------------------------------------


def test_registry_names_and_tags_are_stable():
    # Container tags are forever: reordering or reusing one silently
    # reinterprets archived streams.
    assert {p.name: p.tag for p in registered_predictors()} == {
        "lorenzo1d": 0,
        "nd": 1,
        "lorenzo2d": 2,
        "lorenzo3d": 3,
        "regression": 4,
        "interpolation": 5,
    }
    for p in registered_predictors():
        assert predictor_from_tag(p.tag) is p
        assert get_predictor(p.name) is p
        assert p.locality in (BLOCK_LOCAL, WHOLE_ARRAY)


def test_registry_aliases_and_unknowns():
    assert get_predictor("blocked1d").name == "lorenzo1d"
    with pytest.raises(CompressionError, match="registered:"):
        get_predictor("does-not-exist")
    with pytest.raises(CompressionError, match="unknown predictor tag"):
        predictor_from_tag(250)


def test_wrong_locality_api_raises_with_contract():
    lorenzo = get_predictor("lorenzo1d")
    nd = get_predictor("nd")
    with pytest.raises(CompressionError, match="block_local"):
        lorenzo.predict(np.zeros((4, 4), dtype=np.int64))
    with pytest.raises(CompressionError, match="whole_array"):
        nd.predict_blocks(np.zeros((2, 32), dtype=np.int64))


@pytest.mark.parametrize("name", ALL_PREDICTORS)
@pytest.mark.parametrize(
    "shape", [(64,), (7,), (1,), (33, 17), (6, 7, 9)]
)
def test_transforms_are_exactly_invertible(name, shape):
    pred = get_predictor(name)
    rng = np.random.default_rng(3)
    codes = rng.integers(-(2**40), 2**40, size=shape, dtype=np.int64)
    if pred.block_local:
        flat = codes.reshape(1, -1)
        back = pred.reconstruct_blocks(pred.predict_blocks(flat))
        assert np.array_equal(back, flat)
    else:
        back = pred.reconstruct(pred.predict(codes))
        assert np.array_equal(back, codes)


# --- the cross-layer property -----------------------------------------------------------


@pytest.mark.parametrize("name", ALL_PREDICTORS)
@pytest.mark.parametrize("dtype", ["f4", "f8"])
@pytest.mark.parametrize(
    "shape,kind",
    [
        ((257,), "smooth"),  # 1-D ragged tail
        ((48, 21), "smooth"),  # 2-D ragged
        ((9, 10, 11), "smooth"),  # 3-D ragged
        ((128,), "zero"),  # all-zero field
    ],
)
@pytest.mark.parametrize("container", ["v1", "v2", "v3"])
def test_any_predictor_any_container_decodes_by_header(
    name, dtype, shape, kind, container
):
    np_dtype = np.float32 if dtype == "f4" else np.float64
    field = _field(shape, np_dtype, kind)
    eps = 1e-3
    codec = CereSZ(predictor=name)
    result = codec.compress(
        field,
        eps=eps,
        index=container != "v1",
        checksum=container == "v3",
    )
    header, _ = StreamHeader.unpack(result.stream)
    assert header.predictor == name
    assert header.dtype == dtype
    # Decode with a codec that was NOT told the predictor: pure header
    # dispatch, for both the fused and the reference decode paths.
    for fast in (True, False):
        back = CereSZ(fast=fast).decompress(result.stream)
        assert back.shape == tuple(shape)
        assert back.dtype == np_dtype
        assert np.abs(back.astype(np.float64) - field).max() <= eps


@pytest.mark.parametrize("name", BLOCK_LOCAL_PREDICTORS)
def test_block_local_predictors_shard_to_cszx(name):
    from repro.core.parallel import compress_sharded

    field = _field((6000,), np.float32)
    codec = CereSZ(predictor=name)
    sharded = compress_sharded(
        field, eps=1e-3, codec=codec, jobs=2, shard_elements=2048
    )
    assert is_sharded(sharded.stream)
    back = CereSZ().decompress(sharded.stream)
    assert np.abs(back - field).max() <= 1e-3


@pytest.mark.parametrize("name", ALL_PREDICTORS)
def test_fast_and_reference_paths_are_byte_identical(name):
    field = _field((41, 23), np.float32)
    fast = CereSZ(predictor=name, fast=True).compress(field, eps=1e-3)
    ref = CereSZ(predictor=name, fast=False).compress(field, eps=1e-3)
    assert fast.stream == ref.stream


@pytest.mark.parametrize("name", WHOLE_ARRAY_PREDICTORS)
def test_whole_array_jobs_is_invariant(name):
    """jobs= must never change whole-array bytes (predict once, then
    shard only the block-range encode into one plain stream)."""
    field = _field((73, 41), np.float32)
    codec = CereSZ(predictor=name)
    # index=True on all three: the jobs= route defaults to indexed
    # shards, plain compression to v1 — pin the container so the only
    # variable is the worker count.
    serial = codec.compress(field, eps=1e-3, index=True)
    j1 = codec.compress(field, eps=1e-3, jobs=1, index=True)
    j4 = codec.compress(field, eps=1e-3, jobs=4, index=True)
    assert not is_sharded(j4.stream)
    assert j1.stream == serial.stream
    assert j4.stream == serial.stream


def test_per_call_predictor_override():
    field = _field((48, 21), np.float32)
    codec = CereSZ()  # lorenzo1d default
    default = codec.compress(field, eps=1e-3)
    override = codec.compress(field, eps=1e-3, predictor="lorenzo2d")
    assert StreamHeader.unpack(default.stream)[0].predictor == "lorenzo1d"
    assert StreamHeader.unpack(override.stream)[0].predictor == "lorenzo2d"
    # The instance default is untouched by the override.
    again = codec.compress(field, eps=1e-3)
    assert again.stream == default.stream


def test_whole_array_random_access_is_gated():
    from repro.core.access import decompress_range

    field = _field((48, 21), np.float32)
    stream = CereSZ(predictor="nd").compress(field, eps=1e-3).stream
    with pytest.raises(CompressionError, match="block-local"):
        decompress_range(stream, 0, 10)
    # Block-local non-default predictors still random-access fine.
    stream = CereSZ(predictor="regression").compress(field, eps=1e-3).stream
    part = decompress_range(stream, 5, 100)
    assert np.abs(part - field.reshape(-1)[5:100]).max() <= 1e-3


# --- container format rules -------------------------------------------------------------


# Flags live after the shape dims and eps; for a plain v1 header with no
# constant/crc/tag trailer, that is the final byte — a fixed offset for a
# given shape, whatever the predictor.
_FLAGS_OFF_2D = len(make_header((8, 8), 0.01).pack()) - 1


def test_default_predictor_header_bytes_are_unchanged():
    # lorenzo1d emits neither flag bit nor a tag byte: pre-refactor
    # decoders read these streams, and pre-refactor streams decode here.
    packed = make_header((64,), 0.01).pack()
    flags = packed[-1]
    assert not flags & FLAG_PREDICTOR_ID
    assert not flags & FLAG_ND_PREDICTOR
    back, _ = StreamHeader.unpack(packed + b"\x00" * 8)
    assert back.predictor == "lorenzo1d"


def test_nd_predictor_uses_legacy_flag():
    packed = make_header((8, 8), 0.01, predictor="nd").pack()
    flags = packed[_FLAGS_OFF_2D]
    assert flags & FLAG_ND_PREDICTOR
    assert not flags & FLAG_PREDICTOR_ID
    assert len(packed) == _FLAGS_OFF_2D + 1  # no tag byte


def test_explicit_tag_roundtrip_and_canonical_rejections():
    for name in ("lorenzo2d", "lorenzo3d", "regression", "interpolation"):
        packed = make_header((8, 8), 0.01, predictor=name).pack()
        assert packed[_FLAGS_OFF_2D] & FLAG_PREDICTOR_ID
        assert len(packed) == _FLAGS_OFF_2D + 2  # flags then tag byte
        back, _ = StreamHeader.unpack(packed + b"\x00" * 8)
        assert back.predictor == name

    base = make_header((8, 8), 0.01, predictor="regression").pack()
    # Unknown tag: a future registry entry needs a newer decoder.
    with pytest.raises(FormatError, match="newer decoder"):
        StreamHeader.unpack(base[:-1] + bytes([200]) + b"\x00" * 8)
    # Tags 0/1 must use their legacy encodings (one canonical byte form).
    with pytest.raises(FormatError, match="legacy"):
        StreamHeader.unpack(base[:-1] + bytes([0]) + b"\x00" * 8)
    # Both predictor encodings at once is non-canonical.
    both = bytearray(base)
    both[_FLAGS_OFF_2D] |= FLAG_ND_PREDICTOR
    with pytest.raises(FormatError, match="both"):
        StreamHeader.unpack(bytes(both) + b"\x00" * 8)

    with pytest.raises(FormatError, match="unknown predictor"):
        make_header((8,), 0.01, predictor="nope")


# --- plan IR and lowering ---------------------------------------------------------------


def _blocks(num=4, block=32):
    span = np.arange(num * block, dtype=np.float64)
    return np.sin(span / 5.0).reshape(num, block)


def test_plans_carry_and_validate_the_predictor():
    from repro.core.plan import plan_row_parallel

    plan = plan_row_parallel(
        _blocks(), 0.01, rows=2, cols=1, predictor="regression"
    )
    assert plan.predictor == "regression"
    assert plan.snapshot()["predictor"] == "regression"
    assert "predictor regression" in plan.describe()
    plan.validate()


def test_whole_array_predictors_cannot_be_planned():
    from repro.core.plan import plan_multi_pipeline, plan_row_parallel

    for ctor in (plan_row_parallel, plan_multi_pipeline):
        with pytest.raises(ScheduleError) as err:
            ctor(_blocks(), 0.01, rows=2, cols=2, predictor="nd")
        # The diagnostic names the locality contract and the paper trade.
        msg = str(err.value)
        assert "whole_array" in msg
        assert "block_local" in msg


def test_staged_pipelines_are_lorenzo1d_only():
    from repro.core.plan import plan_pipeline
    from repro.core.schedule import distribute_substages
    from repro.core.stages import compression_substages
    from repro.wse.cost import PAPER_CYCLE_MODEL

    dist = distribute_substages(
        compression_substages(6, 32, PAPER_CYCLE_MODEL), 3
    )
    with pytest.raises(ScheduleError, match="lorenzo1d"):
        plan_pipeline(
            _blocks(), 0.01, dist, rows=1, cols=3, predictor="regression"
        )


@pytest.mark.parametrize("strategy", ["rows", "multi"])
@pytest.mark.parametrize("name", BLOCK_LOCAL_PREDICTORS)
def test_wafer_streams_match_host_for_block_local(strategy, name):
    from repro.core.wse_compressor import WSECereSZ

    rng = np.random.default_rng(7)
    walk = np.cumsum(rng.normal(size=256)).astype(np.float32)
    sim = WSECereSZ(rows=2, cols=2, strategy=strategy, predictor=name)
    result = sim.compress(walk, rel=1e-3)
    host = CereSZ(predictor=name).compress(walk, rel=1e-3)
    assert result.stream == host.stream
    assert StreamHeader.unpack(result.stream)[0].predictor == name


def test_wse_compressor_rejects_whole_array_at_init():
    from repro.core.wse_compressor import WSECereSZ

    with pytest.raises(ScheduleError, match="whole_array"):
        WSECereSZ(predictor="interpolation")


def test_wafer_decompress_is_lorenzo1d_only():
    from repro.core.wse_compressor import WSECereSZ

    field = _field((2048,), np.float32)
    stream = CereSZ(predictor="regression").compress(field, eps=1e-2).stream
    sim = WSECereSZ(rows=2, cols=2, strategy="rows")
    with pytest.raises(CompressionError, match="host"):
        sim.decompress_on_wafer(stream)
