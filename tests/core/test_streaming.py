"""Tests for the framed streaming API."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.core.streaming import (
    FrameReader,
    FrameWriter,
    compress_stream,
    decompress_stream,
)


@pytest.fixture
def snapshots(rng):
    base = np.cumsum(rng.normal(size=500)).astype(np.float32)
    return [
        (base + 0.1 * t * np.sin(np.arange(500) / 20)).astype(np.float32)
        for t in range(6)
    ]


class TestRoundTrip:
    def test_all_frames_recovered(self, snapshots):
        data = compress_stream(snapshots, eps=0.01)
        out = decompress_stream(data)
        assert len(out) == len(snapshots)
        for original, restored in zip(snapshots, out):
            assert np.max(np.abs(restored - original)) <= 0.01

    def test_shared_absolute_bound(self, snapshots):
        reader = FrameReader(compress_stream(snapshots, eps=0.25))
        assert reader.eps == 0.25

    def test_varying_shapes_between_frames(self, rng):
        fields = [
            rng.normal(size=(8, 8)).astype(np.float32),
            rng.normal(size=100).astype(np.float32),
            rng.normal(size=(4, 5, 6)).astype(np.float32),
        ]
        out = decompress_stream(compress_stream(fields, eps=0.01))
        assert [o.shape for o in out] == [(8, 8), (100,), (4, 5, 6)]

    def test_empty_stream(self):
        data = FrameWriter(eps=0.1).getvalue()
        assert decompress_stream(data) == []

    def test_incremental_writer(self, snapshots):
        writer = FrameWriter(eps=0.01)
        sizes = [writer.add(s) for s in snapshots]
        assert writer.num_frames == len(snapshots)
        assert all(s > 0 for s in sizes)
        assert writer.ratio > 1.0


class TestFrameAccess:
    def test_frames_are_standalone_ceresz_streams(self, snapshots):
        from repro import CereSZ

        reader = FrameReader(compress_stream(snapshots, eps=0.01))
        frames = list(reader.frames())
        assert len(frames) == len(snapshots)
        first = CereSZ().decompress(frames[0])
        assert np.max(np.abs(first - snapshots[0])) <= 0.01

    def test_len(self, snapshots):
        reader = FrameReader(compress_stream(snapshots, eps=0.01))
        assert len(reader) == len(snapshots)


class TestErrors:
    def test_bad_magic(self, snapshots):
        data = bytearray(compress_stream(snapshots, eps=0.01))
        data[:4] = b"XXXX"
        with pytest.raises(FormatError, match="magic"):
            FrameReader(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(FormatError, match="shorter"):
            FrameReader(b"CS")

    def test_truncated_frame(self, snapshots):
        data = compress_stream(snapshots, eps=0.01)
        with pytest.raises(FormatError, match="truncated"):
            decompress_stream(data[:-10])

    def test_ratio_before_frames(self):
        with pytest.raises(FormatError):
            FrameWriter(eps=0.1).ratio

    def test_invalid_eps(self):
        with pytest.raises(Exception):
            FrameWriter(eps=-1.0)


class TestWriteThroughSink:
    def test_sink_matches_buffered_bytes(self, snapshots):
        import io

        buffered = FrameWriter(eps=0.05)
        for s in snapshots:
            buffered.add(s)
        sink = io.BytesIO()
        with FrameWriter(eps=0.05, out=sink) as writer:
            for s in snapshots:
                writer.add(s)
        assert sink.getvalue() == buffered.getvalue()

    def test_sink_frames_decode(self, snapshots, tmp_path):
        path = tmp_path / "run.cszs"
        with open(path, "w+b") as fh:
            with FrameWriter(eps=0.05, out=fh) as writer:
                for s in snapshots:
                    writer.add(s)
        reader = FrameReader(path.read_bytes())
        assert len(reader) == len(snapshots)
        for original, back in zip(snapshots, reader):
            assert np.max(np.abs(back - original)) <= 0.05

    def test_frame_count_patched_after_every_add(self, snapshots):
        import io

        sink = io.BytesIO()
        writer = FrameWriter(eps=0.05, out=sink)
        for i, s in enumerate(snapshots[:3]):
            writer.add(s)
            assert FrameReader(sink.getvalue()).num_frames == i + 1

    def test_getvalue_unavailable_in_sink_mode(self, snapshots):
        import io

        writer = FrameWriter(eps=0.05, out=io.BytesIO())
        writer.add(snapshots[0])
        with pytest.raises(FormatError, match="sink"):
            writer.getvalue()

    def test_unseekable_sink_rejected(self):
        class Pipe:
            def seekable(self):
                return False

            def write(self, data):
                return len(data)

        with pytest.raises(FormatError, match="seekable"):
            FrameWriter(eps=0.05, out=Pipe())

    def test_sink_appends_after_existing_bytes(self, snapshots):
        import io

        sink = io.BytesIO()
        sink.write(b"PREFIX--")
        with FrameWriter(eps=0.05, out=sink) as writer:
            writer.add(snapshots[0])
        data = sink.getvalue()
        assert data.startswith(b"PREFIX--")
        reader = FrameReader(data[8:])
        assert reader.num_frames == 1


class TestCodecOptionsForwarding:
    def test_indexed_frames(self, snapshots):
        from repro.core.format import StreamHeader

        data = compress_stream(snapshots, eps=0.05, index=True)
        for frame in FrameReader(data).frames():
            header, _ = StreamHeader.unpack(frame)
            assert header.indexed

    def test_sharded_frames(self, snapshots):
        from repro.core.parallel import is_sharded

        data = compress_stream(snapshots, eps=0.05, jobs=2)
        reader = FrameReader(data, jobs=2)
        for frame in reader.frames():
            assert is_sharded(frame)
        for original, back in zip(snapshots, reader):
            assert np.max(np.abs(back - original)) <= 0.05
