"""Plan-constructor equivalence matrix (every strategy vs the reference).

Each mapping strategy is now a plan constructor plus the single lowering
pass. These tests sweep the awkward shapes — non-divisible block counts,
single-block inputs, all-zero blocks, more rows than blocks — and assert
the lowered programs still produce byte-identical compressed records and
array-identical reconstructions against the host NumPy reference.
"""

import numpy as np
import pytest

from repro.config import BLOCK_SIZE
from repro.core.compressor import CereSZ
from repro.core.wse_compressor import WSECereSZ

EPS = 0.01

# (label, strategy, rows, cols, pipeline_length)
STRATEGY_CONFIGS = [
    ("rows", "rows", 3, 1, 1),
    ("pipeline", "pipeline", 2, 3, 3),
    ("multi", "multi", 2, 3, 1),
    ("staged", "multi", 1, 4, 2),
]


def _dataset(name: str, rng) -> np.ndarray:
    if name == "nondivisible":
        # 7 blocks: not a multiple of any mesh extent used above.
        return np.cumsum(rng.normal(size=7 * BLOCK_SIZE)).astype(np.float32)
    if name == "single_block":
        # One block: rows > blocks on every multi-row mesh.
        return np.cumsum(rng.normal(size=BLOCK_SIZE)).astype(np.float32)
    if name == "zero_blocks":
        # First two blocks exactly zero (fl=0 records), rest a walk.
        data = np.cumsum(rng.normal(size=5 * BLOCK_SIZE)).astype(np.float32)
        data[: 2 * BLOCK_SIZE] = 0.0
        return data
    raise AssertionError(name)


@pytest.mark.parametrize(
    "label,strategy,rows,cols,pl",
    STRATEGY_CONFIGS,
    ids=[c[0] for c in STRATEGY_CONFIGS],
)
@pytest.mark.parametrize(
    "dataset", ["nondivisible", "single_block", "zero_blocks"]
)
class TestPlanEquivalence:
    def test_records_match_reference(
        self, dataset, label, strategy, rows, cols, pl, rng
    ):
        data = _dataset(dataset, rng)
        sim = WSECereSZ(
            rows=rows, cols=cols, strategy=strategy, pipeline_length=pl
        )
        result = sim.compress(data, eps=EPS)
        reference = CereSZ().compress(data, eps=EPS)
        assert result.stream == reference.stream

    def test_reconstruction_matches_reference(
        self, dataset, label, strategy, rows, cols, pl, rng
    ):
        data = _dataset(dataset, rng)
        sim = WSECereSZ(
            rows=rows, cols=cols, strategy=strategy, pipeline_length=pl
        )
        stream = sim.compress(data, eps=EPS).stream
        on_wafer, report = sim.decompress_on_wafer(stream)
        assert report.makespan_cycles > 0
        assert np.array_equal(on_wafer, sim.decompress(stream))


@pytest.mark.parametrize(
    "label,strategy,rows,cols,pl",
    STRATEGY_CONFIGS,
    ids=[c[0] for c in STRATEGY_CONFIGS],
)
def test_plan_for_matches_compressed_placement(
    label, strategy, rows, cols, pl, rng
):
    """plan_for() is the exact plan compress() lowers (same snapshot)."""
    data = _dataset("nondivisible", rng)
    sim = WSECereSZ(
        rows=rows, cols=cols, strategy=strategy, pipeline_length=pl
    )
    plan = sim.plan_for(data, eps=EPS)
    plan.validate()
    assert plan.num_blocks == 7
    again = sim.plan_for(data, eps=EPS)
    assert plan.snapshot() == again.snapshot()
