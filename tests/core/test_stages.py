"""Tests for the sub-stage decomposition (paper Section 4.2)."""

import pytest

from repro.errors import ScheduleError
from repro.core.stages import (
    SubStage,
    coarse_step_cycles,
    compression_substages,
    decompression_substages,
    total_cycles,
)
from repro.wse.cost import PAPER_CYCLE_MODEL


class TestCompressionSubstages:
    def test_stage_order(self):
        names = [s.name for s in compression_substages(2)]
        assert names == [
            "multiplication",
            "addition",
            "lorenzo",
            "sign",
            "max",
            "get_length",
            "shuffle_bit_0",
            "shuffle_bit_1",
        ]

    def test_shuffle_count_tracks_fl(self):
        for fl in (0, 1, 13, 17):
            stages = compression_substages(fl)
            shuffles = [s for s in stages if s.name.startswith("shuffle")]
            assert len(shuffles) == fl

    def test_total_matches_block_cost(self):
        for fl in (1, 12, 17):
            stages = compression_substages(fl)
            expected = PAPER_CYCLE_MODEL.compress_block_cycles(fl)
            assert total_cycles(stages) == pytest.approx(expected)

    def test_multiplication_is_longest_substage(self):
        """Section 4.2: Multiplication bottlenecks the pipeline."""
        stages = compression_substages(17)
        longest = max(stages, key=lambda s: s.cycles)
        assert longest.name == "multiplication"

    def test_coarse_aggregation_matches_table1(self):
        stages = compression_substages(17)
        coarse = coarse_step_cycles(stages)
        assert coarse["prequant"] == pytest.approx(6114, rel=0.02)
        assert coarse["lorenzo"] == pytest.approx(975)
        assert coarse["encode"] == pytest.approx(37124, rel=0.02)

    def test_negative_fl_rejected(self):
        with pytest.raises(ScheduleError):
            compression_substages(-1)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ScheduleError):
            SubStage("bad", -1.0, "encode")


class TestDecompressionSubstages:
    def test_no_max_or_getlength(self):
        """The header pre-knows fl, so decompression skips Max/GetLength."""
        names = [s.name for s in decompression_substages(5)]
        assert "max" not in names
        assert "get_length" not in names

    def test_contains_prefix_sum_and_dequant(self):
        names = [s.name for s in decompression_substages(3)]
        assert "prefix_sum" in names
        assert "dequant_mult" in names

    def test_unshuffle_count_tracks_fl(self):
        stages = decompression_substages(9)
        unshuffles = [s for s in stages if s.name.startswith("unshuffle")]
        assert len(unshuffles) == 9

    def test_total_matches_block_cost(self):
        for fl in (1, 12, 17):
            stages = decompression_substages(fl)
            expected = PAPER_CYCLE_MODEL.decompress_block_cycles(fl)
            assert total_cycles(stages) == pytest.approx(expected)

    def test_cheaper_than_compression(self):
        for fl in (4, 12, 20):
            comp = total_cycles(compression_substages(fl))
            decomp = total_cycles(decompression_substages(fl))
            assert decomp < comp
