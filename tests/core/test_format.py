"""Tests for the stream container format."""

from dataclasses import replace

import pytest

from repro.errors import FormatError
from repro.core.format import (
    CERESZ_MAGIC,
    FLAG_INDEXED,
    FORMAT_VERSION,
    FORMAT_VERSION_INDEXED,
    StreamHeader,
    make_header,
)


class TestHeaderRoundTrip:
    def test_basic(self):
        h = make_header((512, 512), 0.01)
        packed = h.pack()
        out, offset = StreamHeader.unpack(packed)
        assert out == h
        assert offset == len(packed)

    def test_1d_shape(self):
        h = make_header((1000,), 1e-5)
        out, _ = StreamHeader.unpack(h.pack())
        assert out.shape == (1000,)

    def test_3d_shape(self):
        h = make_header((100, 500, 500), 2.5)
        out, _ = StreamHeader.unpack(h.pack())
        assert out.shape == (100, 500, 500)

    def test_constant_flag(self):
        h = make_header((10,), 0.0, constant=3.75)
        out, _ = StreamHeader.unpack(h.pack())
        assert out.constant == 3.75

    def test_no_constant_by_default(self):
        h = make_header((10,), 0.1)
        out, _ = StreamHeader.unpack(h.pack())
        assert out.constant is None

    def test_szp_header_width(self):
        h = make_header((10,), 0.1, header_width=1)
        out, _ = StreamHeader.unpack(h.pack())
        assert out.header_width == 1

    def test_unpack_ignores_trailing_payload(self):
        h = make_header((10,), 0.1)
        stream = h.pack() + b"payload-bytes"
        out, offset = StreamHeader.unpack(stream)
        assert out == h
        assert stream[offset:] == b"payload-bytes"


class TestHeaderProperties:
    def test_num_elements(self):
        assert make_header((4, 5, 6), 0.1).num_elements == 120

    def test_num_blocks_rounds_up(self):
        h = make_header((33,), 0.1, block_size=32)
        assert h.num_blocks == 2

    def test_version_constant(self):
        assert make_header((1,), 0.1).version == FORMAT_VERSION


class TestHeaderErrors:
    def test_bad_magic(self):
        stream = bytearray(make_header((10,), 0.1).pack())
        stream[:4] = b"NOPE"
        with pytest.raises(FormatError, match="magic"):
            StreamHeader.unpack(bytes(stream))

    def test_bad_version(self):
        stream = bytearray(make_header((10,), 0.1).pack())
        stream[4] = 99
        with pytest.raises(FormatError, match="version"):
            StreamHeader.unpack(bytes(stream))

    def test_truncated_fixed_part(self):
        with pytest.raises(FormatError, match="shorter"):
            StreamHeader.unpack(CERESZ_MAGIC)

    def test_truncated_dims(self):
        stream = make_header((10, 20), 0.1).pack()
        with pytest.raises(FormatError, match="dims"):
            StreamHeader.unpack(stream[:10])

    def test_truncated_eps(self):
        stream = make_header((10,), 0.1).pack()
        with pytest.raises(FormatError, match="eps"):
            StreamHeader.unpack(stream[:-5])

    def test_truncated_constant(self):
        stream = make_header((10,), 0.0, constant=1.0).pack()
        with pytest.raises(FormatError, match="constant"):
            StreamHeader.unpack(stream[:-4])

    def test_corrupt_block_size(self):
        stream = bytearray(make_header((10,), 0.1).pack())
        stream[6] = 7  # block_size low byte -> 7, not a multiple of 8
        stream[7] = 0
        with pytest.raises(FormatError, match="block size"):
            StreamHeader.unpack(bytes(stream))


class TestIndexedHeader:
    def test_v2_round_trip(self):
        h = make_header((512, 512), 0.01, indexed=True)
        assert h.version == FORMAT_VERSION_INDEXED
        assert h.indexed
        out, offset = StreamHeader.unpack(h.pack())
        assert out == h
        assert out.indexed
        assert offset == len(h.pack())

    def test_v1_not_indexed_by_default(self):
        h = make_header((100,), 0.1)
        assert h.version == FORMAT_VERSION
        assert not h.indexed
        out, _ = StreamHeader.unpack(h.pack())
        assert not out.indexed

    def test_index_bytes_one_per_block(self):
        h = make_header((1000,), 0.1, block_size=32, indexed=True)
        assert h.index_bytes == h.num_blocks
        assert make_header((1000,), 0.1).index_bytes == 0

    def test_indexed_constant_rejected(self):
        h = make_header((10,), 0.0, constant=1.0)
        bad = replace(h, indexed=True, version=FORMAT_VERSION_INDEXED)
        with pytest.raises(FormatError, match="constant"):
            bad.pack()

    def test_version_flag_mismatch_rejected_on_pack(self):
        h = make_header((10,), 0.1)
        with pytest.raises(FormatError, match="version"):
            replace(h, indexed=True).pack()  # flag without version bump
        with pytest.raises(FormatError, match="version"):
            replace(h, version=FORMAT_VERSION_INDEXED).pack()

    def test_v2_without_flag_rejected_on_unpack(self):
        stream = bytearray(make_header((10,), 0.1, indexed=True).pack())
        # flags byte sits right after eps: fixed part + 1 dim + 8 eps bytes
        flags_at = 9 + 8 + 8
        stream[flags_at] &= ~FLAG_INDEXED & 0xFF
        with pytest.raises(FormatError):
            StreamHeader.unpack(bytes(stream))

    def test_v1_with_flag_rejected_on_unpack(self):
        stream = bytearray(make_header((10,), 0.1).pack())
        flags_at = 9 + 8 + 8
        stream[flags_at] |= FLAG_INDEXED
        with pytest.raises(FormatError):
            StreamHeader.unpack(bytes(stream))

    def test_future_version_rejected(self):
        stream = bytearray(make_header((10,), 0.1).pack())
        stream[4] = 3
        with pytest.raises(FormatError, match="version"):
            StreamHeader.unpack(bytes(stream))
