"""Tests for the shard engine (parallel compression containers)."""

import numpy as np
import pytest

from repro import CereSZ
from repro.errors import CompressionError, FormatError
from repro.core.parallel import (
    DEFAULT_SHARD_ELEMENTS,
    SHARD_MAGIC,
    compress_sharded,
    decompress_sharded,
    is_sharded,
    read_shard_table,
    resolve_jobs,
)


@pytest.fixture
def big_field(rng):
    """Large enough for several shards at a small shard size."""
    return np.cumsum(rng.normal(size=5000)).astype(np.float32)


class TestRoundTrip:
    def test_basic(self, big_field):
        result = compress_sharded(
            big_field, eps=0.01, jobs=2, shard_elements=1024
        )
        assert is_sharded(result.stream)
        back = decompress_sharded(result.stream, jobs=2)
        assert back.dtype == np.float32
        assert back.shape == big_field.shape
        assert np.max(np.abs(back - big_field)) <= 0.01

    def test_via_codec_api(self, codec, big_field):
        result = codec.compress(big_field, eps=0.01, jobs=2)
        assert is_sharded(result.stream)
        back = codec.decompress(result.stream, jobs=2)
        assert np.max(np.abs(back - big_field)) <= 0.01

    def test_decompress_dispatches_on_magic(self, codec, big_field):
        """A plain decompress() call must recognise shard containers."""
        result = codec.compress(big_field, eps=0.01, jobs=2)
        back = codec.decompress(result.stream)
        assert np.max(np.abs(back - big_field)) <= 0.01

    def test_2d_shape_restored(self, codec, field_2d):
        result = compress_sharded(
            field_2d, eps=0.01, jobs=2, shard_elements=1024
        )
        back = decompress_sharded(result.stream)
        assert back.shape == field_2d.shape
        assert np.max(np.abs(back - field_2d)) <= 0.01

    def test_float64_round_trip(self, rng):
        field = np.cumsum(rng.normal(size=3000))
        result = compress_sharded(
            field, eps=1e-6, codec=CereSZ(), shard_elements=1024
        )
        back = decompress_sharded(result.stream)
        assert back.dtype == np.float64
        assert np.max(np.abs(back - field)) <= 1e-6

    def test_rel_bound_resolved_globally(self, big_field):
        """A REL bound maps to ONE absolute eps for all shards."""
        result = compress_sharded(
            big_field, rel=1e-3, jobs=2, shard_elements=1024
        )
        vrange = float(big_field.max() - big_field.min())
        assert result.eps <= 1e-3 * vrange
        back = decompress_sharded(result.stream)
        assert np.max(np.abs(back - big_field)) <= result.eps

    def test_constant_field_falls_back(self, codec):
        field = np.full(4000, 2.5, dtype=np.float32)
        # Under a relative bound a constant field stores as one tiny exact
        # constant stream, not a shard container (same rule as compress()).
        result = compress_sharded(field, rel=1e-3, shard_elements=1024)
        assert not is_sharded(result.stream)
        back = codec.decompress(result.stream)
        assert np.array_equal(back, field)

    def test_single_shard_when_field_small(self, codec, smooth_field):
        result = compress_sharded(smooth_field, eps=0.01)
        assert smooth_field.size <= DEFAULT_SHARD_ELEMENTS
        _, _, _, spans = read_shard_table(result.stream)
        assert len(spans) == 1


class TestDeterminism:
    def test_output_independent_of_jobs(self, big_field):
        """Shard boundaries depend on shard_elements, never pool size."""
        one = compress_sharded(
            big_field, eps=0.01, jobs=1, shard_elements=1024
        )
        two = compress_sharded(
            big_field, eps=0.01, jobs=3, shard_elements=1024
        )
        assert one.stream == two.stream

    def test_shards_are_self_describing_streams(self, codec, big_field):
        result = compress_sharded(
            big_field, eps=0.01, shard_elements=1024
        )
        _, _, _, spans = read_shard_table(result.stream)
        pieces = [
            codec.decompress(result.stream[lo:hi]) for lo, hi in spans
        ]
        back = np.concatenate(pieces)
        assert np.max(np.abs(back - big_field)) <= 0.01

    def test_index_false_writes_v1_shards(self, big_field):
        indexed = compress_sharded(
            big_field, eps=0.01, shard_elements=1024, index=True
        )
        plain = compress_sharded(
            big_field, eps=0.01, shard_elements=1024, index=False
        )
        assert len(plain.stream) < len(indexed.stream)
        for result, want in ((indexed, 2), (plain, 1)):
            _, _, _, spans = read_shard_table(result.stream)
            lo, _ = spans[0]
            assert result.stream[lo + 4] == want  # version byte


class TestErrors:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(4) == 4
        with pytest.raises(CompressionError):
            resolve_jobs(0)

    def test_bad_magic(self, big_field):
        result = compress_sharded(big_field, eps=0.01, shard_elements=1024)
        bad = b"XXXX" + result.stream[4:]
        assert not is_sharded(bad)
        with pytest.raises(FormatError):
            read_shard_table(bad)

    def test_bad_version(self, big_field):
        result = compress_sharded(big_field, eps=0.01, shard_elements=1024)
        bad = bytearray(result.stream)
        bad[4] = 99
        with pytest.raises(FormatError, match="version"):
            read_shard_table(bytes(bad))

    def test_truncated_header(self):
        with pytest.raises(FormatError, match="shorter"):
            read_shard_table(SHARD_MAGIC + b"\x01")

    def test_truncated_payload(self, big_field):
        result = compress_sharded(big_field, eps=0.01, shard_elements=1024)
        with pytest.raises(FormatError):
            decompress_sharded(result.stream[:-10])

    def test_absurd_shard_count_rejected(self, big_field):
        result = compress_sharded(big_field, eps=0.01, shard_elements=1024)
        bad = bytearray(result.stream)
        bad[6:10] = (10**9).to_bytes(4, "little")  # num_shards field
        with pytest.raises(FormatError):
            read_shard_table(bytes(bad))

    def test_empty_field_rejected(self):
        with pytest.raises(CompressionError):
            compress_sharded(np.zeros(0, dtype=np.float32), eps=0.01)
