"""Tests for fixed-length encoding: the paper's step 3 and Fig 8."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.config import CERESZ_HEADER_BYTES, SZP_HEADER_BYTES
from repro.errors import CompressionError, FormatError
from repro.core.encoding import (
    block_fixed_lengths,
    decode_blocks,
    encode_blocks,
    index_record_offsets,
    pack_block_index,
    pack_records,
    record_sizes,
    scan_record_offsets,
    unpack_block_index,
)


class TestFixedLengths:
    def test_matches_bit_length(self):
        blocks = np.array([[0, 1, 2, 3, 8, -8, 5, 7]], dtype=np.int64)
        assert block_fixed_lengths(blocks)[0] == 4  # max |.| = 8 -> 4 bits

    def test_paper_fig5_example(self):
        """Fig 5(b): max abs 8 -> fixed length 4."""
        residuals = np.array([[4, 2, -3, 0, 1, 8, -6, 2]], dtype=np.int64)
        assert block_fixed_lengths(residuals)[0] == 4

    def test_zero_block_length_zero(self):
        assert block_fixed_lengths(np.zeros((1, 8), dtype=np.int64))[0] == 0

    def test_exact_powers_of_two(self):
        for k in range(1, 45):
            blocks = np.array([[2**k] + [0] * 7], dtype=np.int64)
            assert block_fixed_lengths(blocks)[0] == k + 1, k
            blocks = np.array([[2**k - 1] + [0] * 7], dtype=np.int64)
            assert block_fixed_lengths(blocks)[0] == k

    def test_per_block_independence(self):
        blocks = np.array([[1] * 8, [255] * 8, [0] * 8], dtype=np.int64)
        assert block_fixed_lengths(blocks).tolist() == [1, 8, 0]

    def test_float64_log2_boundaries(self):
        """Regression: the old float64-log2 width scan rounded across
        binades — ``log2(2**k - 1)`` for k >= 49 evaluates to exactly
        ``k`` in float64, inflating the width by one bit. The exact
        integer bit-length scan must hold at every boundary up to and
        beyond the 2**53 float64 integer precision cliff."""
        for k in range(45, 63):
            lo = np.array([[2**k - 1] + [0] * 7], dtype=np.int64)
            assert block_fixed_lengths(lo)[0] == k, k
            if k < 62:
                hi = np.array([[2**k] + [0] * 7], dtype=np.int64)
                assert block_fixed_lengths(hi)[0] == k + 1, k
        cliff = np.array([[2**53 + 1] + [0] * 7], dtype=np.int64)
        assert block_fixed_lengths(cliff)[0] == 54
        imax = np.array([[2**63 - 1] + [0] * 7], dtype=np.int64)
        assert block_fixed_lengths(imax)[0] == 63

    def test_int64_min_rejected_not_wrapped(self):
        """Regression: |int64 min| wraps to itself under int64 abs; the
        width scan must report 64 bits (via the uint64 view) and the
        encoder must refuse the block rather than emit a wrapped record."""
        blocks = np.array([[-(2**63)] + [0] * 7], dtype=np.int64)
        assert block_fixed_lengths(blocks)[0] == 64
        with pytest.raises(FormatError):
            encode_blocks(blocks)

    @given(
        hnp.arrays(
            np.int64,
            st.tuples(st.integers(1, 10), st.integers(8, 8)),
            elements=st.integers(-(2**45), 2**45),
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_python_bit_length(self, blocks):
        fls = block_fixed_lengths(blocks)
        for row, fl in zip(blocks, fls):
            assert fl == int(np.max(np.abs(row))).bit_length()


class TestRecordSizes:
    def test_zero_block_is_header_only(self):
        sizes = record_sizes(np.array([0]), 32, CERESZ_HEADER_BYTES)
        assert sizes[0] == 4

    def test_nonzero_block_layout(self):
        # header + signs (L/8) + fl * L/8
        sizes = record_sizes(np.array([5]), 32, CERESZ_HEADER_BYTES)
        assert sizes[0] == 4 + 4 + 5 * 4

    def test_szp_header_width(self):
        sizes = record_sizes(np.array([0, 3]), 32, SZP_HEADER_BYTES)
        assert sizes.tolist() == [1, 1 + 4 + 12]

    def test_format_ratio_caps(self):
        """The 31.99x / 127.94x ceilings of the paper's Table 5."""
        raw = 32 * 4
        assert raw / record_sizes(np.array([0]), 32, 4)[0] == 32.0
        assert raw / record_sizes(np.array([0]), 32, 1)[0] == 128.0


class TestEncodeDecode:
    def test_paper_fig5_byte_count(self):
        """Fig 5: 8 floats (32 B) -> 6 B with a 1-byte header.

        Header 1 + signs 1 + 4 bits x 8 elements = 4 payload bytes.
        """
        residuals = np.array([[4, 2, -3, 0, 1, 8, -6, 2]], dtype=np.int64)
        stream = encode_blocks(residuals, SZP_HEADER_BYTES)
        assert len(stream) == 6

    def test_round_trip_basic(self):
        residuals = np.array(
            [[4, 2, -3, 0, 1, 8, -6, 2], [0] * 8, [-1] * 8], dtype=np.int64
        )
        stream = encode_blocks(residuals)
        out = decode_blocks(stream, 3, 8)
        assert np.array_equal(out, residuals)

    def test_round_trip_szp_header(self):
        residuals = np.array([[100, -100] * 16], dtype=np.int64)
        stream = encode_blocks(residuals, SZP_HEADER_BYTES)
        out = decode_blocks(stream, 1, 32, SZP_HEADER_BYTES)
        assert np.array_equal(out, residuals)

    def test_zero_blocks_store_header_only(self):
        residuals = np.zeros((10, 32), dtype=np.int64)
        stream = encode_blocks(residuals)
        assert len(stream) == 10 * 4

    def test_mixed_fixed_lengths(self):
        rng = np.random.default_rng(0)
        residuals = np.concatenate(
            [
                rng.integers(-3, 4, size=(5, 32)),
                rng.integers(-1000, 1001, size=(5, 32)),
                np.zeros((5, 32), dtype=np.int64),
            ]
        )
        stream = encode_blocks(residuals)
        assert np.array_equal(decode_blocks(stream, 15, 32), residuals)

    def test_large_magnitudes(self):
        residuals = np.array([[2**44, -(2**44)] + [0] * 30], dtype=np.int64)
        stream = encode_blocks(residuals)
        assert np.array_equal(decode_blocks(stream, 1, 32), residuals)

    def test_bit_shuffle_layout(self):
        """Byte group k holds bit k of all elements (paper Fig 8)."""
        # One block of 8 where only element 3 is nonzero, value 1 (fl=1):
        residuals = np.zeros((1, 8), dtype=np.int64)
        residuals[0, 3] = 1
        stream = encode_blocks(residuals, SZP_HEADER_BYTES)
        # [header=1][signs=0][bit0 byte: element 3 -> bit 3 = 0x08]
        assert stream == bytes([1, 0, 0x08])

    def test_sign_bit_layout(self):
        residuals = np.zeros((1, 8), dtype=np.int64)
        residuals[0, 5] = -1
        stream = encode_blocks(residuals, SZP_HEADER_BYTES)
        # [header=1][signs: bit 5 -> 0x20][payload bit0: element 5 -> 0x20]
        assert stream == bytes([1, 0x20, 0x20])

    def test_empty_block_array(self):
        residuals = np.zeros((0, 32), dtype=np.int64)
        assert encode_blocks(residuals) == b""
        assert decode_blocks(b"", 0, 32).shape == (0, 32)

    def test_rejects_non_integer(self):
        with pytest.raises(CompressionError):
            encode_blocks(np.zeros((1, 8), dtype=np.float32))

    def test_rejects_1d(self):
        with pytest.raises(CompressionError):
            encode_blocks(np.zeros(8, dtype=np.int64))

    def test_rejects_bad_header_width(self):
        with pytest.raises(FormatError):
            encode_blocks(np.zeros((1, 8), dtype=np.int64), header_bytes=2)

    def test_szp_header_overflow(self):
        # fl 256 cannot fit a single byte... but fl > 63 is rejected first.
        residuals = np.array([[2**60] + [0] * 7], dtype=np.int64)
        stream = encode_blocks(residuals)  # 4-byte header handles fl=61
        assert np.array_equal(decode_blocks(stream, 1, 8), residuals)

    @given(
        blocks=hnp.arrays(
            np.int64,
            st.tuples(st.integers(1, 12), st.sampled_from([8, 16, 32])),
            elements=st.integers(-(2**45), 2**45),
        ),
        header=st.sampled_from([1, 4]),
    )
    @settings(max_examples=150, deadline=None)
    def test_round_trip_property(self, blocks, header):
        stream = encode_blocks(blocks, header)
        out = decode_blocks(
            stream, blocks.shape[0], blocks.shape[1], header
        )
        assert np.array_equal(out, blocks)


class TestScanAndErrors:
    def test_scan_offsets(self):
        residuals = np.array([[0] * 8, [1] * 8, [0] * 8], dtype=np.int64)
        stream = encode_blocks(residuals, SZP_HEADER_BYTES)
        offsets, fls = scan_record_offsets(stream, 3, 8, SZP_HEADER_BYTES)
        assert offsets.tolist() == [0, 1, 4]
        assert fls.tolist() == [0, 1, 0]

    def test_truncated_header_raises(self):
        with pytest.raises(FormatError, match="truncated|cannot hold"):
            decode_blocks(b"\x01", 1, 8)  # CereSZ header needs 4 bytes

    def test_block_count_beyond_stream_raises(self):
        """The pre-allocation guard against corrupt block counts."""
        with pytest.raises(FormatError, match="cannot hold"):
            decode_blocks(b"\x00" * 16, 10**9, 8)

    def test_truncated_payload_raises(self):
        residuals = np.array([[7] * 8], dtype=np.int64)
        stream = encode_blocks(residuals)
        with pytest.raises(FormatError, match="truncated"):
            decode_blocks(stream[:-1], 1, 8)

    def test_corrupt_fixed_length_raises(self):
        bad = bytes([200, 0, 0, 0])  # fl = 200 > 63
        with pytest.raises(FormatError, match="invalid fixed length"):
            decode_blocks(bad, 1, 8)

    def test_missing_second_block_raises(self):
        residuals = np.array([[1] * 8], dtype=np.int64)
        stream = encode_blocks(residuals)
        with pytest.raises(FormatError):
            decode_blocks(stream, 2, 8)

    def test_start_offset(self):
        residuals = np.array([[3] * 8], dtype=np.int64)
        stream = b"\xde\xad" + encode_blocks(residuals)
        out = decode_blocks(stream, 1, 8, start=2)
        assert np.array_equal(out, residuals)


class TestPackRecords:
    """The fused path's packing core against the encode_blocks oracle."""

    def test_matches_encode_blocks_mixed_lengths(self):
        rng = np.random.default_rng(11)
        residuals = rng.integers(-(2**20), 2**20, size=(16, 32), dtype=np.int64)
        residuals[3] = 0  # zero block in the middle
        residuals[15] = 0  # and at the tail
        mags = np.abs(residuals).astype(np.uint64)
        negs = residuals < 0
        fl = block_fixed_lengths(residuals)
        packed = pack_records(mags, negs, fl)
        assert packed.tobytes() == encode_blocks(residuals)

    def test_negative_fixed_length_rejected(self):
        with pytest.raises(FormatError, match="negative fixed length"):
            pack_records(
                np.zeros((1, 8), dtype=np.uint64),
                np.zeros((1, 8), dtype=bool),
                np.array([-1], dtype=np.int64),
            )

    def test_overwide_fixed_length_rejected(self):
        with pytest.raises(FormatError, match="exceeds 63"):
            pack_records(
                np.zeros((1, 8), dtype=np.uint64),
                np.zeros((1, 8), dtype=bool),
                np.array([64], dtype=np.int64),
            )


class TestBlockIndex:
    """The container-v2 fl table and its vectorized offset computation."""

    def _stream_and_fls(self, rng, blocks=40, L=32):
        residuals = rng.integers(-500, 500, size=(blocks, L)).astype(np.int64)
        residuals[::3] = 0  # mix in zero blocks
        fls = block_fixed_lengths(residuals)
        return encode_blocks(residuals), fls, residuals

    def test_pack_unpack_round_trip(self, rng):
        _, fls, _ = self._stream_and_fls(rng)
        table = pack_block_index(fls)
        assert len(table) == len(fls)
        out, pos = unpack_block_index(table, len(fls))
        assert pos == len(table)
        assert np.array_equal(out, fls)

    def test_unpack_with_start(self, rng):
        _, fls, _ = self._stream_and_fls(rng)
        buf = b"\xab\xcd" + pack_block_index(fls)
        out, pos = unpack_block_index(buf, len(fls), 2)
        assert pos == 2 + len(fls)
        assert np.array_equal(out, fls)

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(FormatError):
            pack_block_index(np.array([64], dtype=np.int64))
        with pytest.raises(FormatError):
            pack_block_index(np.array([-1], dtype=np.int64))

    def test_unpack_rejects_truncated_table(self, rng):
        _, fls, _ = self._stream_and_fls(rng)
        with pytest.raises(FormatError, match="truncated"):
            unpack_block_index(pack_block_index(fls)[:-1], len(fls))

    def test_unpack_rejects_invalid_fl(self):
        with pytest.raises(FormatError, match="fixed length"):
            unpack_block_index(bytes([64]), 1)

    def test_index_offsets_match_scan(self, rng):
        stream, fls, _ = self._stream_and_fls(rng)
        scanned, scanned_fls = scan_record_offsets(stream, len(fls), 32)
        indexed = index_record_offsets(fls, 32, stream_size=len(stream))
        assert np.array_equal(indexed, scanned)
        assert np.array_equal(scanned_fls, fls)

    def test_index_offsets_respect_start(self, rng):
        _, fls, _ = self._stream_and_fls(rng)
        base = index_record_offsets(fls, 32)
        shifted = index_record_offsets(fls, 32, start=7)
        assert np.array_equal(shifted, base + 7)

    def test_index_offsets_reject_overrun(self, rng):
        stream, fls, _ = self._stream_and_fls(rng)
        with pytest.raises(FormatError, match="outside|truncated"):
            index_record_offsets(fls, 32, stream_size=len(stream) - 1)

    def test_decode_with_explicit_layout(self, rng):
        stream, fls, residuals = self._stream_and_fls(rng)
        offsets = index_record_offsets(fls, 32, stream_size=len(stream))
        out = decode_blocks(
            stream, len(fls), 32, offsets=offsets, fls=fls
        )
        assert np.array_equal(out, residuals)

    def test_decode_rejects_layout_shape_mismatch(self, rng):
        stream, fls, _ = self._stream_and_fls(rng)
        offsets = index_record_offsets(fls, 32)
        with pytest.raises(FormatError, match="mismatch"):
            decode_blocks(
                stream, len(fls), 32, offsets=offsets[:-1], fls=fls
            )

    def test_decode_rejects_layout_out_of_bounds(self, rng):
        stream, fls, _ = self._stream_and_fls(rng)
        offsets = index_record_offsets(fls, 32) + len(stream)
        with pytest.raises(FormatError, match="outside"):
            decode_blocks(stream, len(fls), 32, offsets=offsets, fls=fls)
