"""Tests for pre-quantization: the only lossy step, hence the bound proofs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import CompressionError, ErrorBoundError
from repro.core.quantize import (
    MAX_QUANT_BITS,
    dequantize,
    effective_error_bound,
    prequantize,
    prequantize_verified,
    relative_to_absolute,
    validate_error_bound,
)


class TestValidateErrorBound:
    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_bad_bounds(self, bad):
        with pytest.raises(ErrorBoundError):
            validate_error_bound(bad)

    def test_accepts_positive(self):
        assert validate_error_bound(0.5) == 0.5


class TestPrequantize:
    def test_paper_example(self):
        """Paper Section 3: eps=0.01 maps 0.83 -> round(0.83/0.02) = 42.

        (The paper's prose says eps=0.1 but computes with 0.01; we follow
        the arithmetic: 0.83 / 0.02 = 41.5 -> 42.)
        """
        codes = prequantize(np.array([0.83]), 0.01)
        assert codes[0] == 42
        recon = dequantize(codes, 0.01)
        assert abs(recon[0] - 0.83) <= 0.01

    def test_exact_arithmetic_bound(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=1000) * 100
        for eps in (1e-3, 0.1, 7.0):
            codes = prequantize(data, eps)
            recon = codes.astype(np.float64) * 2 * eps
            assert np.max(np.abs(recon - data)) <= eps

    def test_zero_maps_to_zero(self):
        assert prequantize(np.zeros(5), 0.1).tolist() == [0] * 5

    def test_half_boundary_rounds_up(self):
        # floor(x + 0.5) convention: exactly 0.5 -> 1.
        assert prequantize(np.array([0.1]), 0.1)[0] == 1

    def test_negative_values(self):
        codes = prequantize(np.array([-0.83]), 0.01)
        assert codes[0] == -41  # floor(-41.5 + 0.5) = -41

    def test_non_finite_rejected(self):
        with pytest.raises(CompressionError, match="non-finite"):
            prequantize(np.array([1.0, np.inf]), 0.1)
        with pytest.raises(CompressionError, match="non-finite"):
            prequantize(np.array([np.nan]), 0.1)

    def test_overflow_guard(self):
        with pytest.raises(CompressionError, match="overflow"):
            prequantize(np.array([1e30]), 1e-9)

    def test_shape_preserved(self):
        codes = prequantize(np.ones((3, 4)), 0.1)
        assert codes.shape == (3, 4)
        assert codes.dtype == np.int64

    @given(
        data=hnp.arrays(
            np.float32,
            st.integers(1, 200),
            elements=st.floats(
                -1e6, 1e6, width=32, allow_nan=False, allow_infinity=False
            ),
        ),
        eps=st.floats(1e-4, 1e3),
    )
    @settings(max_examples=200, deadline=None)
    def test_bound_property_exact(self, data, eps):
        codes = prequantize(data.astype(np.float64), eps)
        recon = codes.astype(np.float64) * 2 * eps
        # The mathematical bound is <= eps in real arithmetic; evaluating
        # the reconstruction in float64 can add a few ulps of the *value*
        # at exact-tie points, hence the spacing-based slack. The
        # user-facing guarantee (the float32 round trip through
        # prequantize_verified) is tested strictly above.
        slack = 4 * float(np.spacing(np.max(np.abs(data.astype(np.float64))) + eps))
        assert np.max(np.abs(recon - data.astype(np.float64))) <= eps + slack


class TestPrequantizeVerified:
    def test_float32_round_trip_bound(self):
        rng = np.random.default_rng(1)
        data = (rng.normal(size=5000) * 1000).astype(np.float32)
        eps = 0.377  # a bound that trips the unverified path's corner case
        codes, eps_eff = prequantize_verified(data, eps)
        recon = dequantize(codes, eps_eff).astype(np.float64)
        assert np.max(np.abs(recon - data.astype(np.float64))) <= eps
        assert 0 < eps_eff < eps

    @given(
        data=hnp.arrays(
            np.float32,
            st.integers(1, 100),
            elements=st.floats(
                -1e5, 1e5, width=32, allow_nan=False, allow_infinity=False
            ),
        ),
        rel=st.floats(1e-4, 0.3),
    )
    @settings(max_examples=150, deadline=None)
    def test_float32_bound_property(self, data, rel):
        peak = float(np.max(np.abs(data)))
        eps = rel * max(peak, 1e-3)
        codes, eps_eff = prequantize_verified(data, eps)
        recon = dequantize(codes, eps_eff).astype(np.float64)
        assert np.max(np.abs(recon - data.astype(np.float64))) <= eps

    def test_below_float32_resolution_raises(self):
        data = np.array([1e8], dtype=np.float32)
        with pytest.raises(ErrorBoundError, match="resolution"):
            prequantize_verified(data, 1e-9)


class TestEffectiveErrorBound:
    def test_shrinks_the_bound(self):
        data = np.array([100.0])
        eff = effective_error_bound(data, 0.5)
        assert 0 < eff < 0.5

    def test_margin_grows_with_magnitude(self):
        small = effective_error_bound(np.array([1.0]), 0.5)
        large = effective_error_bound(np.array([1e6]), 0.5)
        assert large < small

    def test_empty_data_passthrough(self):
        assert effective_error_bound(np.zeros(0), 0.5) == 0.5


class TestDequantize:
    def test_formula(self):
        out = dequantize(np.array([3]), 0.05)
        assert out[0] == pytest.approx(0.3)

    def test_output_dtype(self):
        assert dequantize(np.array([1]), 0.1).dtype == np.float32
        assert dequantize(np.array([1]), 0.1, dtype=np.float64).dtype == (
            np.float64
        )


class TestRelativeToAbsolute:
    def test_range_based(self):
        data = np.array([0.0, 10.0])
        assert relative_to_absolute(data, 1e-2) == pytest.approx(0.1)

    def test_offset_invariant(self):
        a = np.array([0.0, 10.0])
        b = a + 500.0
        assert relative_to_absolute(a, 1e-3) == pytest.approx(
            relative_to_absolute(b, 1e-3)
        )

    def test_constant_field_rejected(self):
        with pytest.raises(ErrorBoundError, match="zero value range"):
            relative_to_absolute(np.full(10, 3.0), 1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ErrorBoundError):
            relative_to_absolute(np.zeros(0), 1e-3)

    @pytest.mark.parametrize("bad", [0.0, -1e-3, float("inf")])
    def test_bad_rel_rejected(self, bad):
        with pytest.raises(ErrorBoundError):
            relative_to_absolute(np.array([0.0, 1.0]), bad)


def test_max_quant_bits_is_float64_safe():
    """The guard must keep codes in float64's exact-integer territory."""
    assert MAX_QUANT_BITS <= 52
