"""Hybrid (hierarchical) simulation equivalence.

``simulate_plan(mode="hybrid")`` event-simulates one representative row
per partition class and composes the member rows analytically. That is
only admissible because it is *exact*: every observable — compressed
bytes, makespan, per-PE traces, per-node counters, metrics, timelines —
must match the full event-driven run bit for bit. These tests sweep the
paper's figure configurations (Fig 7 row scaling, Fig 13 pipeline
lengths, Fig 14 mesh sizes) plus heterogeneous remainders, and pin the
class-detection machinery (fingerprints, partition classes, replication)
with unit tests.
"""

import numpy as np
import pytest

from repro.config import BLOCK_SIZE
from repro.core.plan import (
    partition_classes,
    plan_multi_pipeline,
    plan_pipeline,
    plan_row_parallel,
    plan_staged_multi_pipeline,
    replicate_rows,
    row_fingerprints,
    row_subplan,
    tile_rows,
)
from repro.core.schedule import distribute_substages
from repro.core.simulate import simulate_plan, simulate_replicated
from repro.core.stages import compression_substages
from repro.core.wse_compressor import WSECereSZ
from repro.errors import ScheduleError
from repro.faults import FaultPlan, PEHalt
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

EPS = 0.01


def _blocks(num_blocks: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(num_blocks, BLOCK_SIZE)).cumsum(axis=1)


def _distribution(length: int):
    return distribute_substages(
        compression_substages(8, BLOCK_SIZE), length
    )


def _trace_rows(trace):
    return [
        (t.row, t.col, t.compute_cycles, t.relay_cycles, t.tasks_run,
         t.finished_at)
        for t in trace.traces
    ]


def _counter_rows(trace):
    return [
        (nc.label, nc.kind, nc.row, nc.col, nc.blocks_relayed,
         nc.wavelets_sent, nc.blocks_emitted, dict(nc.stage_cycles))
        for nc in trace.node_counters
    ]


#: (id, plan builder, block count). The matrix mirrors the paper's
#: sweeps: Fig 7 scales rows (``rows`` strategy), Fig 13 scales pipeline
#: length, Fig 14 scales the mesh. Ragged block counts exercise
#: heterogeneous remainders (rows whose last round differs).
CONFIGS = [
    # Fig 7: row scaling.
    ("fig7-rows2", lambda b: plan_row_parallel(b, EPS, rows=2, cols=1), 13),
    ("fig7-rows3", lambda b: plan_row_parallel(b, EPS, rows=3, cols=1), 12),
    ("fig7-rows5", lambda b: plan_row_parallel(b, EPS, rows=5, cols=1), 17),
    # Fig 13: pipeline lengths.
    (
        "fig13-pl2",
        lambda b: plan_pipeline(b, EPS, _distribution(2), rows=3, cols=2),
        13,
    ),
    (
        "fig13-pl3",
        lambda b: plan_pipeline(b, EPS, _distribution(3), rows=2, cols=3),
        9,
    ),
    (
        "fig13-staged2",
        lambda b: plan_staged_multi_pipeline(
            b, EPS, _distribution(2), rows=2, cols=4
        ),
        13,
    ),
    # Fig 14: mesh sizes.
    ("fig14-2x3", lambda b: plan_multi_pipeline(b, EPS, rows=2, cols=3), 13),
    ("fig14-3x4", lambda b: plan_multi_pipeline(b, EPS, rows=3, cols=4), 26),
    ("fig14-4x4", lambda b: plan_multi_pipeline(b, EPS, rows=4, cols=4), 64),
]

CONFIG_IDS = [c[0] for c in CONFIGS]


@pytest.mark.parametrize(
    ("build", "num_blocks"),
    [(c[1], c[2]) for c in CONFIGS],
    ids=CONFIG_IDS,
)
class TestHybridMatchesEvent:
    def test_cycle_exact(self, build, num_blocks):
        blocks = _blocks(num_blocks)
        event = simulate_plan(build(blocks))
        hybrid = simulate_plan(build(blocks), mode="hybrid")
        assert event.mode == "event"
        assert hybrid.mode == "hybrid"
        assert hybrid.row_classes  # detection actually ran
        assert event.outputs.stream(num_blocks) == hybrid.outputs.stream(
            num_blocks
        )
        assert (
            event.report.makespan_cycles == hybrid.report.makespan_cycles
        )
        assert (
            event.report.events_processed
            == hybrid.report.events_processed
        )
        assert event.report.tasks_run == hybrid.report.tasks_run
        assert _trace_rows(event.report.trace) == _trace_rows(
            hybrid.report.trace
        )
        assert _counter_rows(event.report.trace) == _counter_rows(
            hybrid.report.trace
        )

    def test_metrics_match(self, build, num_blocks):
        blocks = _blocks(num_blocks)
        m_event, m_hybrid = MetricsRegistry(), MetricsRegistry()
        simulate_plan(build(blocks), metrics=m_event)
        simulate_plan(build(blocks), mode="hybrid", metrics=m_hybrid)
        assert m_event.counter_totals() == m_hybrid.counter_totals()
        for metric in m_event:
            if metric.kind in ("counter", "histogram"):
                assert (
                    metric.values == m_hybrid.get(metric.name).values
                ), metric.name

    def test_timeline_multiset_matches(self, build, num_blocks):
        """Composition walks classes, not rows, so event *order* may
        differ from the serial row-major capture; the event multiset is
        identical (same PEs, same tasks, same cycles)."""
        blocks = _blocks(num_blocks)
        t_event = Tracer(level="timeline")
        t_hybrid = Tracer(level="timeline")
        simulate_plan(build(blocks), tracer=t_event)
        simulate_plan(build(blocks), mode="hybrid", tracer=t_hybrid)
        assert sorted(
            (e.row, e.col, e.name, e.start_cycles, e.dur_cycles)
            for e in t_event.pe_events
        ) == sorted(
            (e.row, e.col, e.name, e.start_cycles, e.dur_cycles)
            for e in t_hybrid.pe_events
        )

    def test_jobs_auto_is_equivalent(self, build, num_blocks):
        blocks = _blocks(num_blocks)
        one = simulate_plan(build(blocks), mode="hybrid", jobs=1)
        auto = simulate_plan(build(blocks), mode="hybrid", jobs="auto")
        assert one.outputs.stream(num_blocks) == auto.outputs.stream(
            num_blocks
        )
        assert (
            one.report.makespan_cycles == auto.report.makespan_cycles
        )


@pytest.mark.parametrize("predictor", ["lorenzo1d", "regression"])
def test_hybrid_exact_per_predictor(predictor):
    blocks = _blocks(13)
    event = simulate_plan(
        plan_multi_pipeline(blocks, EPS, rows=3, cols=2, predictor=predictor)
    )
    hybrid = simulate_plan(
        plan_multi_pipeline(blocks, EPS, rows=3, cols=2, predictor=predictor),
        mode="hybrid",
    )
    assert event.outputs.stream(13) == hybrid.outputs.stream(13)
    assert event.report.makespan_cycles == hybrid.report.makespan_cycles


class TestPartitionClasses:
    def test_homogeneous_rows_collapse_to_one_class(self):
        row_blocks = _blocks(4)
        blocks = tile_rows(row_blocks, 3, "multi", cols=4)
        plan = plan_multi_pipeline(blocks, EPS, rows=3, cols=4)
        assert partition_classes(plan) == [(0, (0, 1, 2))]

    def test_heterogeneous_remainder_splits_classes(self):
        """13 blocks over 3 rows ('rows' strategy): rows 0 carries 5
        blocks, rows 1-2 carry 4 — but with *distinct random data* every
        row is its own class; with row-identical data only the
        block-count difference splits them."""
        ragged = plan_row_parallel(_blocks(13), EPS, rows=3, cols=1)
        assert partition_classes(ragged) == [
            (0, (0,)), (1, (1,)), (2, (2,)),
        ]
        # Same data in every row, but row 0 owns one extra block: the
        # remainder row is structurally different, the rest collapse.
        row = _blocks(4)[0]
        blocks = np.tile(row, (13, 1))
        plan = plan_row_parallel(blocks, EPS, rows=3, cols=1)
        classes = partition_classes(plan)
        assert classes == [(0, (0,)), (1, (1, 2))]

    def test_fingerprint_sensitive_to_feed_values(self):
        row_blocks = _blocks(4)
        blocks = tile_rows(row_blocks, 3, "multi", cols=4)
        perturbed = blocks.copy()
        perturbed[4, 0] += 1.0  # one value in row 1's first block
        base = row_fingerprints(
            plan_multi_pipeline(blocks, EPS, rows=3, cols=4)
        )
        moved = row_fingerprints(
            plan_multi_pipeline(perturbed, EPS, rows=3, cols=4)
        )
        assert base[0] == base[1] == base[2]
        assert moved[0] == moved[2] == base[0]
        assert moved[1] != base[1]

    def test_fingerprint_sensitive_to_eps(self):
        blocks = tile_rows(_blocks(4), 2, "multi", cols=4)
        a = row_fingerprints(plan_multi_pipeline(blocks, EPS, rows=2, cols=4))
        b = row_fingerprints(
            plan_multi_pipeline(blocks, EPS * 2, rows=2, cols=4)
        )
        assert a[0] != b[0]

    def test_row_subplan_requires_partitionable(self):
        plan = plan_multi_pipeline(_blocks(8), EPS, rows=2, cols=4)
        with pytest.raises(ScheduleError):
            row_subplan(plan, 5)


class TestReplication:
    @pytest.mark.parametrize("strategy", ["rows", "pipeline", "multi"])
    def test_simulate_replicated_matches_materialized(self, strategy):
        row_blocks = _blocks(4, seed=3)
        if strategy == "rows":
            template = plan_row_parallel(row_blocks, EPS, rows=1, cols=1)
        elif strategy == "pipeline":
            template = plan_pipeline(
                row_blocks, EPS, _distribution(2), rows=1, cols=2
            )
        else:
            template = plan_multi_pipeline(row_blocks, EPS, rows=1, cols=4)
        copies = 4
        fast = simulate_replicated(template, copies)
        materialized = simulate_plan(replicate_rows(template, copies))
        n = row_blocks.shape[0] * copies
        assert fast.outputs.stream(n) == materialized.outputs.stream(n)
        assert (
            fast.report.makespan_cycles
            == materialized.report.makespan_cycles
        )
        assert (
            fast.report.events_processed
            == materialized.report.events_processed
        )
        assert fast.report.tasks_run == materialized.report.tasks_run
        assert _trace_rows(fast.report.trace) == _trace_rows(
            materialized.report.trace
        )
        assert _counter_rows(fast.report.trace) == _counter_rows(
            materialized.report.trace
        )

    def test_replicate_rows_rejects_bad_input(self):
        template = plan_multi_pipeline(_blocks(4), EPS, rows=1, cols=4)
        with pytest.raises(ScheduleError):
            replicate_rows(template, 0)

    def test_tile_rows_needs_whole_rounds(self):
        with pytest.raises(ScheduleError):
            tile_rows(_blocks(5), 3, "multi", cols=4)


class TestHybridFallbacks:
    def test_faults_fall_back_to_event(self):
        """Faults target specific rows; replication cannot honor them, so
        the hybrid request silently runs the event engine (and records
        that it did)."""
        blocks = tile_rows(_blocks(4), 3, "multi", cols=4)
        plan = plan_multi_pipeline(blocks, EPS, rows=3, cols=4)
        # A halt far past the makespan: injected but never fires.
        faults = FaultPlan(
            seed=1, faults=(PEHalt(row=1, col=0, at_cycle=10**9),)
        )
        run = simulate_plan(plan, mode="hybrid", faults=faults)
        assert run.mode == "event"
        assert run.row_classes == ()

    def test_single_row_falls_back_to_event(self):
        plan = plan_multi_pipeline(_blocks(4), EPS, rows=1, cols=4)
        run = simulate_plan(plan, mode="hybrid")
        assert run.mode == "event"

    def test_unknown_mode_rejected(self):
        plan = plan_multi_pipeline(_blocks(4), EPS, rows=2, cols=2)
        with pytest.raises(ValueError):
            simulate_plan(plan, mode="analytic")


class TestWSECompressorHybrid:
    def test_hybrid_stream_matches_event(self):
        data = np.cumsum(
            np.random.default_rng(5).normal(size=512)
        ).astype(np.float32)
        ev = WSECereSZ(rows=4, cols=4, mode="event").compress(
            data, rel=1e-3
        )
        hy = WSECereSZ(rows=4, cols=4, mode="hybrid").compress(
            data, rel=1e-3
        )
        assert hy.mode == "hybrid"
        assert ev.stream == hy.stream
        assert ev.makespan_cycles == hy.makespan_cycles

    @pytest.mark.parametrize("strategy", ["rows", "pipeline", "multi"])
    def test_tiled_stream_matches_reference(self, strategy):
        """``tile_rows=True`` treats the input as one row's data; the
        composed stream is byte-identical to the reference CereSZ
        compressing the row repeated across every row."""
        from repro.core.compressor import CereSZ

        rows, cols = 3, 4
        row = (
            np.random.default_rng(7)
            .normal(size=cols * BLOCK_SIZE)
            .astype(np.float32)
        )
        kwargs = dict(rows=rows, cols=cols, strategy=strategy, mode="hybrid")
        if strategy == "pipeline":
            kwargs["pipeline_length"] = 2
        result = WSECereSZ(**kwargs).compress(row, rel=1e-3, tile_rows=True)
        reference = CereSZ().compress(np.tile(row, rows), rel=1e-3)
        assert result.stream == reference.stream
        assert result.mode == "hybrid"
        assert result.row_classes == ((0, rows),)

    def test_hybrid_decompress_on_wafer(self):
        data = np.cumsum(
            np.random.default_rng(9).normal(size=512)
        ).astype(np.float32)
        codec = WSECereSZ(rows=4, cols=1, strategy="rows", mode="hybrid")
        stream = codec.compress(data, rel=1e-3).stream
        values, report = codec.decompress_on_wafer(stream)
        reference = WSECereSZ(
            rows=4, cols=1, strategy="rows", mode="event"
        ).decompress_on_wafer(stream)
        assert np.array_equal(values, reference[0])
        assert (
            report.makespan_cycles == reference[1].makespan_cycles
        )
