"""Tests for on-wafer decompression (the Section 4.2 reverse mapping)."""

import numpy as np
import pytest

from repro import CereSZ
from repro.errors import CompressionError
from repro.core.mapping_decompress import (
    decode_block_from_words,
    records_to_words,
)
from repro.core.wse_compressor import WSECereSZ


@pytest.fixture(scope="module")
def mixed_field():
    """Smooth + constant-run data: exercises zero and dense blocks."""
    rng = np.random.default_rng(9)
    data = np.cumsum(rng.normal(size=1024)).astype(np.float32)
    # A silent region (exactly zero) quantizes to all-zero codes, so these
    # blocks become header-only zero blocks in the stream.
    data[256:512] = 0.0
    return data


@pytest.fixture(scope="module")
def stream(mixed_field):
    return CereSZ().compress(mixed_field, rel=1e-3)


class TestRecordPacking:
    def test_word_counts(self, stream, mixed_field):
        from repro.core.format import StreamHeader

        header, offset = StreamHeader.unpack(stream.stream)
        packed = records_to_words(
            stream.stream[offset:], header.num_blocks, header.block_size
        )
        assert len(packed) == header.num_blocks
        for hdr, words in packed:
            fl = int(hdr[0])
            if fl == 0:
                assert words is None
            else:
                assert words.size == 1 + fl  # signs word + fl plane words

    def test_zero_blocks_have_no_body(self, stream):
        from repro.core.format import StreamHeader

        header, offset = StreamHeader.unpack(stream.stream)
        packed = records_to_words(
            stream.stream[offset:], header.num_blocks, header.block_size
        )
        zero = [w for h, w in packed if int(h[0]) == 0]
        assert zero and all(w is None for w in zero)

    def test_rejects_unaligned_block_size(self):
        with pytest.raises(CompressionError, match="32-multiple"):
            records_to_words(b"", 0, 16)


class TestDecodeKernel:
    def test_zero_block(self):
        out = decode_block_from_words(0, None, 0.5, 32)
        assert not out.any()

    def test_matches_reference_block(self):
        rng = np.random.default_rng(1)
        data = np.cumsum(rng.normal(size=32)).astype(np.float32)
        codec = CereSZ()
        result = codec.compress(data, eps=0.05)
        expected = codec.decompress(result.stream)
        from repro.core.format import StreamHeader

        header, offset = StreamHeader.unpack(result.stream)
        packed = records_to_words(result.stream[offset:], 1, 32)
        hdr, words = packed[0]
        out = decode_block_from_words(int(hdr[0]), words, header.eps, 32)
        assert np.array_equal(out, expected)


class TestOnWaferDecompression:
    @pytest.mark.parametrize("rows", [1, 2, 4])
    def test_values_identical_to_reference(self, mixed_field, stream, rows):
        expected = CereSZ().decompress(stream.stream)
        sim = WSECereSZ(rows=rows, cols=1, strategy="rows")
        out, report = sim.decompress_on_wafer(stream.stream)
        assert np.array_equal(out, expected)
        assert report.tasks_run > 0

    def test_error_bound_holds(self, mixed_field, stream):
        sim = WSECereSZ(rows=2, cols=1, strategy="rows")
        out, _ = sim.decompress_on_wafer(stream.stream)
        err = np.max(
            np.abs(out.astype(np.float64) - mixed_field.astype(np.float64))
        )
        assert err <= stream.eps

    def test_decompression_faster_than_compression(self, mixed_field):
        """The paper's Figs 11 vs 12, at discrete-event level: no Max /
        GetLength work and shorter receive chains for zero blocks."""
        sim = WSECereSZ(rows=2, cols=1, strategy="rows")
        comp = sim.compress(mixed_field, rel=1e-3)
        out, report = sim.decompress_on_wafer(comp.stream)
        assert report.makespan_cycles < comp.makespan_cycles

    def test_rows_speed_up_decompression(self, stream):
        m1 = WSECereSZ(rows=1, cols=1, strategy="rows").decompress_on_wafer(
            stream.stream
        )[1]
        m4 = WSECereSZ(rows=4, cols=1, strategy="rows").decompress_on_wafer(
            stream.stream
        )[1]
        speedup = m1.makespan_cycles / m4.makespan_cycles
        assert 3.0 <= speedup <= 4.5

    def test_2d_shape_restored(self, field_2d):
        result = CereSZ().compress(field_2d, rel=1e-3)
        sim = WSECereSZ(rows=2, cols=1, strategy="rows")
        out, _ = sim.decompress_on_wafer(result.stream)
        assert out.shape == field_2d.shape

    def test_constant_stream_redirected(self):
        result = CereSZ().compress(
            np.full(64, 5.0, dtype=np.float32), rel=1e-3
        )
        sim = WSECereSZ(rows=1, cols=1, strategy="rows")
        with pytest.raises(CompressionError, match="constant"):
            sim.decompress_on_wafer(result.stream)

    def test_szp_stream_rejected(self, mixed_field):
        szp_stream = CereSZ(header_width=1).compress(
            mixed_field, rel=1e-3
        )
        sim = WSECereSZ(rows=1, cols=1, strategy="rows")
        with pytest.raises(CompressionError, match="4-byte"):
            sim.decompress_on_wafer(szp_stream.stream)


class TestPipelineDecompression:
    """The Section 4.2 decompression mapping: Algorithm 1 over the reverse
    sub-stages, one pipeline per row."""

    @pytest.mark.parametrize("pl", [2, 3, 4, 6])
    def test_values_identical_to_reference(self, mixed_field, stream, pl):
        expected = CereSZ().decompress(stream.stream)
        sim = WSECereSZ(
            rows=2, cols=max(pl, 2), strategy="pipeline", pipeline_length=pl
        )
        out, report = sim.decompress_on_wafer(stream.stream)
        assert np.array_equal(out, expected)
        assert report.tasks_run > 0

    def test_pipeline_beats_single_pe_makespan(self, stream):
        single = WSECereSZ(rows=1, cols=1, strategy="rows")
        piped = WSECereSZ(
            rows=1, cols=4, strategy="pipeline", pipeline_length=4
        )
        m_single = single.decompress_on_wafer(stream.stream)[1]
        m_piped = piped.decompress_on_wafer(stream.stream)[1]
        assert m_piped.makespan_cycles < m_single.makespan_cycles

    def test_zero_blocks_take_the_fast_path(self, mixed_field):
        """Zero blocks enter the pipeline collapsed; the head PE spends
        almost nothing on them."""
        silent = np.zeros(320, dtype=np.float32)
        silent[0] = 100.0  # one dense block establishes fl > 0
        result = CereSZ().compress(silent, eps=0.5)
        sim = WSECereSZ(
            rows=1, cols=3, strategy="pipeline", pipeline_length=3
        )
        out, report = sim.decompress_on_wafer(result.stream)
        assert np.max(np.abs(out - silent)) <= 0.5

    def test_error_bound_holds_through_pipeline(self, mixed_field, stream):
        sim = WSECereSZ(
            rows=2, cols=3, strategy="pipeline", pipeline_length=3
        )
        out, _ = sim.decompress_on_wafer(stream.stream)
        err = np.max(
            np.abs(out.astype(np.float64) - mixed_field.astype(np.float64))
        )
        assert err <= stream.eps
