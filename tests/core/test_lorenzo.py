"""Tests for 1D (and N-D) Lorenzo prediction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import CompressionError
from repro.core.lorenzo import (
    lorenzo_predict,
    lorenzo_predict_nd,
    lorenzo_reconstruct,
    lorenzo_reconstruct_nd,
)


class TestLorenzo1D:
    def test_paper_semantics(self):
        """(p1, p2-p1, ..., pL - p(L-1)) within each block."""
        blocks = np.array([[4, 6, 3, 3]], dtype=np.int64)
        out = lorenzo_predict(blocks)
        assert out.tolist() == [[4, 2, -3, 0]]

    def test_first_element_stored_verbatim(self):
        blocks = np.array([[7, 7], [-5, -5]], dtype=np.int64)
        out = lorenzo_predict(blocks)
        assert out[:, 0].tolist() == [7, -5]

    def test_blocks_are_independent(self):
        """No leakage across block boundaries (the WSE mapping's premise)."""
        a = np.array([[1, 2], [100, 101]], dtype=np.int64)
        b = np.array([[1, 2], [-3, -2]], dtype=np.int64)
        assert np.array_equal(lorenzo_predict(a)[0], lorenzo_predict(b)[0])

    def test_round_trip(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(-1000, 1000, size=(50, 32))
        assert np.array_equal(
            lorenzo_reconstruct(lorenzo_predict(blocks)), blocks
        )

    def test_reconstruct_is_prefix_sum(self):
        residuals = np.array([[1, 1, 1, 1]], dtype=np.int64)
        assert lorenzo_reconstruct(residuals).tolist() == [[1, 2, 3, 4]]

    def test_constant_block_residuals_are_zero_after_leader(self):
        blocks = np.full((1, 8), 9, dtype=np.int64)
        out = lorenzo_predict(blocks)
        assert out[0, 0] == 9
        assert not out[0, 1:].any()

    def test_requires_2d(self):
        with pytest.raises(CompressionError):
            lorenzo_predict(np.arange(8))
        with pytest.raises(CompressionError):
            lorenzo_reconstruct(np.arange(8))

    def test_input_not_mutated(self):
        blocks = np.array([[1, 2, 3]], dtype=np.int64)
        original = blocks.copy()
        lorenzo_predict(blocks)
        assert np.array_equal(blocks, original)

    @given(
        hnp.arrays(
            np.int64,
            st.tuples(st.integers(1, 20), st.integers(1, 64)),
            elements=st.integers(-(2**40), 2**40),
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_round_trip_property(self, blocks):
        assert np.array_equal(
            lorenzo_reconstruct(lorenzo_predict(blocks)), blocks
        )


class TestLorenzoND:
    def test_1d_matches_flat_diff(self):
        arr = np.array([3, 5, 4], dtype=np.int64)
        assert lorenzo_predict_nd(arr).tolist() == [3, 2, -1]

    def test_2d_residuals_vanish_on_bilinear_field(self):
        """The 2-D Lorenzo operator annihilates planar (affine) data."""
        y, x = np.mgrid[0:8, 0:9]
        plane = (3 * y + 5 * x + 7).astype(np.int64)
        res = lorenzo_predict_nd(plane)
        assert not res[1:, 1:].any()

    def test_round_trip_2d(self):
        rng = np.random.default_rng(1)
        arr = rng.integers(-50, 50, size=(13, 17))
        assert np.array_equal(
            lorenzo_reconstruct_nd(lorenzo_predict_nd(arr)), arr
        )

    def test_round_trip_3d(self):
        rng = np.random.default_rng(2)
        arr = rng.integers(-50, 50, size=(5, 6, 7))
        assert np.array_equal(
            lorenzo_reconstruct_nd(lorenzo_predict_nd(arr)), arr
        )

    @given(
        hnp.arrays(
            np.int64,
            st.tuples(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8)),
            elements=st.integers(-(2**20), 2**20),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property_3d(self, arr):
        assert np.array_equal(
            lorenzo_reconstruct_nd(lorenzo_predict_nd(arr)), arr
        )
