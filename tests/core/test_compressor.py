"""Tests for the CereSZ public compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import CereSZ, ReproError
from repro.config import MAX_RATIO_CERESZ, MAX_RATIO_SZP
from repro.core.format import StreamHeader
from repro.errors import CompressionError, ErrorBoundError, FormatError
from repro.metrics.errorbound import check_error_bound, max_abs_error


class TestRoundTrip:
    def test_smooth_field(self, codec, smooth_field):
        result = codec.compress(smooth_field, rel=1e-3)
        back = codec.decompress(result.stream)
        assert back.shape == smooth_field.shape
        assert check_error_bound(smooth_field, back, result.eps)

    def test_rough_field(self, codec, rough_field):
        result = codec.compress(rough_field, rel=1e-4)
        back = codec.decompress(result.stream)
        assert check_error_bound(rough_field, back, result.eps)

    def test_sparse_field_hits_ratio_cap(self, codec, sparse_field):
        result = codec.compress(sparse_field, rel=1e-2)
        back = codec.decompress(result.stream)
        assert check_error_bound(sparse_field, back, result.eps)
        assert result.zero_block_fraction > 0.5
        assert result.ratio > 8  # zero blocks dominate the stream

    def test_2d_shape_restored(self, codec, field_2d):
        result = codec.compress(field_2d, rel=1e-3)
        back = codec.decompress(result.stream)
        assert back.shape == field_2d.shape
        assert check_error_bound(field_2d, back, result.eps)

    def test_3d_shape_restored(self, codec, field_3d):
        result = codec.compress(field_3d, rel=1e-3)
        back = codec.decompress(result.stream)
        assert back.shape == field_3d.shape
        assert check_error_bound(field_3d, back, result.eps)

    def test_absolute_bound_mode(self, codec, smooth_field):
        result = codec.compress(smooth_field, eps=0.25)
        back = codec.decompress(result.stream)
        assert result.eps == 0.25
        assert max_abs_error(smooth_field, back) <= 0.25

    def test_single_element(self, codec):
        data = np.array([3.14], dtype=np.float32)
        result = codec.compress(data, eps=0.01)
        back = codec.decompress(result.stream)
        assert abs(back[0] - data[0]) <= 0.01

    def test_partial_tail_block(self, codec):
        data = np.linspace(0, 1, 47).astype(np.float32)
        result = codec.compress(data, eps=0.001)
        back = codec.decompress(result.stream)
        assert back.size == 47
        assert check_error_bound(data, back, result.eps)

    def test_float64_input_accepted(self, codec):
        data = np.linspace(0, 1, 64)
        result = codec.compress(data, eps=0.01)
        back = codec.decompress(result.stream)
        assert check_error_bound(data, back, result.eps)

    @given(
        data=hnp.arrays(
            np.float32,
            st.integers(1, 300),
            elements=st.floats(
                -1e4, 1e4, width=32, allow_nan=False, allow_infinity=False
            ),
        ),
        rel=st.sampled_from([1e-2, 1e-3, 1e-4]),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_bound_property(self, data, rel):
        codec = CereSZ()
        if float(data.max()) == float(data.min()):
            result = codec.compress(data, rel=rel)
            assert np.array_equal(codec.decompress(result.stream), data)
            return
        try:
            result = codec.compress(data, rel=rel)
        except ErrorBoundError:
            return  # bound below float32 resolution: correct refusal
        back = codec.decompress(result.stream)
        assert check_error_bound(data, back, result.eps)


class TestConstantFields:
    def test_exact_reconstruction(self, codec):
        data = np.full((7, 9), -2.5, dtype=np.float32)
        result = codec.compress(data, rel=1e-3)
        back = codec.decompress(result.stream)
        assert np.array_equal(back, data)

    def test_high_ratio(self, codec):
        data = np.full(10000, 1.0, dtype=np.float32)
        result = codec.compress(data, rel=1e-3)
        assert result.ratio > 500

    def test_zero_field(self, codec):
        data = np.zeros(100, dtype=np.float32)
        result = codec.compress(data, rel=1e-2)
        assert np.array_equal(codec.decompress(result.stream), data)


class TestValidation:
    def test_both_bounds_rejected(self, codec, smooth_field):
        with pytest.raises(ErrorBoundError):
            codec.compress(smooth_field, eps=0.1, rel=1e-3)

    def test_neither_bound_rejected(self, codec, smooth_field):
        with pytest.raises(ErrorBoundError):
            codec.compress(smooth_field)

    def test_empty_rejected(self, codec):
        with pytest.raises(CompressionError):
            codec.compress(np.zeros(0, dtype=np.float32), rel=1e-3)

    def test_integer_input_rejected(self, codec):
        with pytest.raises(CompressionError):
            codec.compress(np.arange(10), rel=1e-3)

    def test_bad_header_width_rejected(self):
        with pytest.raises(FormatError):
            CereSZ(header_width=3)

    def test_bad_block_size_rejected(self):
        with pytest.raises(CompressionError):
            CereSZ(block_size=20)

    def test_garbage_stream_rejected(self, codec):
        with pytest.raises(FormatError):
            codec.decompress(b"not a ceresz stream at all")


class TestResultMetadata:
    def test_ratio_and_bit_rate(self, codec, smooth_field):
        result = codec.compress(smooth_field, rel=1e-3)
        assert result.ratio == pytest.approx(
            result.original_bytes / len(result.stream)
        )
        assert result.bit_rate == pytest.approx(32.0 / result.ratio, rel=0.01)

    def test_fixed_lengths_cover_all_blocks(self, codec, smooth_field):
        result = codec.compress(smooth_field, rel=1e-3)
        assert result.fixed_lengths.size == -(-smooth_field.size // 32)

    def test_zero_fraction_consistency(self, codec, sparse_field):
        result = codec.compress(sparse_field, rel=1e-2)
        assert result.zero_block_fraction == pytest.approx(
            float(np.mean(result.fixed_lengths == 0))
        )

    def test_describe_stream(self, codec, smooth_field):
        result = codec.compress(smooth_field, rel=1e-3)
        header = codec.describe_stream(result.stream)
        assert header.shape == smooth_field.shape
        assert header.block_size == 32
        # The header stores the effective bound, slightly inside eps.
        assert 0 < header.eps <= result.eps


class TestHeaderWidthVariants:
    def test_szp_format_round_trip(self, smooth_field):
        codec = CereSZ(header_width=1)
        result = codec.compress(smooth_field, rel=1e-3)
        back = codec.decompress(result.stream)
        assert check_error_bound(smooth_field, back, result.eps)

    def test_szp_beats_ceresz_on_sparse_data(self, sparse_field):
        """The 1-byte headers lift the ratio cap from 32x to 128x."""
        r4 = CereSZ(header_width=4).compress(sparse_field, rel=1e-2)
        r1 = CereSZ(header_width=1).compress(sparse_field, rel=1e-2)
        assert r1.ratio > r4.ratio
        assert r4.ratio <= MAX_RATIO_CERESZ + 1
        assert r1.ratio <= MAX_RATIO_SZP + 1

    def test_identical_reconstructions_across_widths(self, smooth_field):
        """Header width changes bytes, never values (same quantization)."""
        r4 = CereSZ(header_width=4).compress(smooth_field, rel=1e-3)
        r1 = CereSZ(header_width=1).compress(smooth_field, rel=1e-3)
        b4 = CereSZ().decompress(r4.stream)
        b1 = CereSZ().decompress(r1.stream)
        assert np.array_equal(b4, b1)


class TestBlockSizeVariants:
    @pytest.mark.parametrize("block_size", [8, 16, 32, 64])
    def test_round_trip_various_blocks(self, smooth_field, block_size):
        codec = CereSZ(block_size=block_size)
        result = codec.compress(smooth_field, rel=1e-3)
        back = codec.decompress(result.stream)
        assert check_error_bound(smooth_field, back, result.eps)


class TestIndexedContainer:
    """Container v2: the embedded fl table and v1 interoperability."""

    def test_v2_round_trip(self, codec, smooth_field):
        result = codec.compress(smooth_field, rel=1e-3, index=True)
        header = codec.describe_stream(result.stream)
        assert header.indexed
        back = codec.decompress(result.stream)
        assert check_error_bound(smooth_field, back, result.eps)

    def test_v1_v2_decode_byte_identically(self, codec, smooth_field):
        """Same quantization, same values — the index changes layout only."""
        r1 = codec.compress(smooth_field, rel=1e-3, index=False)
        r2 = codec.compress(smooth_field, rel=1e-3, index=True)
        assert not codec.describe_stream(r1.stream).indexed
        b1 = codec.decompress(r1.stream)
        b2 = codec.decompress(r2.stream)
        assert b1.tobytes() == b2.tobytes()

    def test_v2_is_v1_plus_index_table(self, codec, smooth_field):
        """Block records are byte-identical; v2 only inserts the fl table."""
        r1 = codec.compress(smooth_field, rel=1e-3, index=False)
        r2 = codec.compress(smooth_field, rel=1e-3, index=True)
        h1, off1 = StreamHeader.unpack(r1.stream)
        h2, off2 = StreamHeader.unpack(r2.stream)
        assert r2.stream[off2 + h2.num_blocks :] == r1.stream[off1:]
        assert len(r2.stream) == len(r1.stream) + h1.num_blocks

    def test_szp_width_with_index(self, smooth_field):
        codec = CereSZ(header_width=1)
        result = codec.compress(smooth_field, rel=1e-3, index=True)
        back = codec.decompress(result.stream)
        assert check_error_bound(smooth_field, back, result.eps)

    def test_float64_with_index(self, codec, rng):
        field = np.cumsum(rng.normal(size=2000))
        result = codec.compress(field, eps=1e-7, index=True)
        back = codec.decompress(result.stream)
        assert back.dtype == np.float64
        assert np.max(np.abs(back - field)) <= 1e-7

    def test_constant_field_with_index(self, codec):
        """Constant streams carry no records, so no index is written."""
        field = np.full(100, 7.25, dtype=np.float32)
        result = codec.compress(field, rel=1e-3, index=True)
        header = codec.describe_stream(result.stream)
        assert header.constant == 7.25
        assert not header.indexed
        assert np.array_equal(codec.decompress(result.stream), field)

    def test_single_block_field_with_index(self, codec):
        field = np.linspace(0, 1, 7, dtype=np.float32)
        result = codec.compress(field, eps=0.001, index=True)
        back = codec.decompress(result.stream)
        assert back.shape == field.shape
        assert np.max(np.abs(back - field)) <= 0.001

    @pytest.mark.parametrize("index", [False, True])
    def test_truncation_at_every_boundary_rejected(self, codec, index):
        """Every strict prefix of a stream must fail *controlled*."""
        field = np.cumsum(
            np.random.default_rng(7).normal(size=200)
        ).astype(np.float32)
        stream = codec.compress(field, eps=0.01, index=index).stream
        for cut in range(len(stream)):
            with pytest.raises(ReproError):
                codec.decompress(stream[:cut])

    def test_block_count_guard_uses_post_header_length(self, codec):
        """A corrupt block count just inside the *total* stream length but
        beyond the record bytes must be rejected up front (the guard must
        subtract the global header size)."""
        field = np.cumsum(
            np.random.default_rng(8).normal(size=320)
        ).astype(np.float32)
        stream = codec.compress(field, eps=0.01, index=False).stream
        header = codec.describe_stream(stream)
        # 10 blocks x 4-byte headers need 40 record bytes. Keep 30: the
        # total stream (header + 30) still exceeds 40 bytes overall.
        _, offset = StreamHeader.unpack(stream)
        cut = stream[: offset + 30]
        assert len(cut) > header.num_blocks * header.header_width
        with pytest.raises(FormatError):
            codec.decompress(cut)
