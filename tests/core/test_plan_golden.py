"""Golden placement/color snapshots and makespan pins for every strategy.

Two regression nets over the plan/lower layer:

* the *placement* of each strategy's plan on a fixed configuration is
  pinned as a JSON snapshot under ``tests/core/golden/`` — any change to
  colors, routes, node order, schedules, or SRAM footprints shows up as a
  readable diff against the committed file;
* the simulated makespans of representative Fig 7/10/13 configurations are
  pinned to the values the pre-refactor hand-wired builders produced. The
  lowering pass is meant to be cycle-exact, so these match exactly; the
  assertion allows the 1% the acceptance bar requires.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.plan import (
    plan_multi_pipeline,
    plan_pipeline,
    plan_pipeline_decompress,
    plan_row_parallel,
    plan_row_parallel_decompress,
    plan_staged_multi_pipeline,
)
from repro.core.compressor import CereSZ
from repro.core.schedule import distribute_substages
from repro.core.stages import compression_substages, decompression_substages
from repro.core.wse_compressor import WSECereSZ
from repro.wse.cost import PAPER_CYCLE_MODEL

GOLDEN_DIR = Path(__file__).parent / "golden"

BLOCK_SIZE = 32
EPS = 0.01


def _fixed_blocks(num_blocks: int) -> np.ndarray:
    span = np.arange(num_blocks * BLOCK_SIZE, dtype=np.float64)
    return np.sin(span / 7.0).reshape(num_blocks, BLOCK_SIZE) * 3.0


def _fixed_body(num_blocks: int) -> bytes:
    data = _fixed_blocks(num_blocks).reshape(-1).astype(np.float32)
    result = CereSZ(block_size=BLOCK_SIZE).compress(data, eps=EPS)
    from repro.core.format import StreamHeader

    _, offset = StreamHeader.unpack(result.stream)
    return result.stream[offset:]


def _distribution(length: int, *, decompress: bool = False):
    if decompress:
        stages = decompression_substages(6, BLOCK_SIZE, PAPER_CYCLE_MODEL)
    else:
        stages = compression_substages(6, BLOCK_SIZE, PAPER_CYCLE_MODEL)
    return distribute_substages(stages, length)


def build_snapshots() -> dict[str, dict]:
    """Every strategy's plan on its fixed config (shared with the refresher)."""
    blocks = _fixed_blocks(6)
    body = _fixed_body(6)
    return {
        "plan_rows": plan_row_parallel(blocks, EPS, rows=2, cols=1).snapshot(),
        "plan_pipeline": plan_pipeline(
            blocks, EPS, _distribution(3), rows=2, cols=3
        ).snapshot(),
        "plan_multi": plan_multi_pipeline(
            blocks, EPS, rows=2, cols=3
        ).snapshot(),
        "plan_staged": plan_staged_multi_pipeline(
            blocks, EPS, _distribution(2), rows=1, cols=4
        ).snapshot(),
        "plan_rows_decompress": plan_row_parallel_decompress(
            body, 6, EPS, rows=2, cols=1, block_size=BLOCK_SIZE
        ).snapshot(),
        "plan_pipeline_decompress": plan_pipeline_decompress(
            body,
            6,
            EPS,
            _distribution(3, decompress=True),
            rows=2,
            cols=3,
            block_size=BLOCK_SIZE,
        ).snapshot(),
    }


@pytest.mark.parametrize(
    "name",
    [
        "plan_rows",
        "plan_pipeline",
        "plan_multi",
        "plan_staged",
        "plan_rows_decompress",
        "plan_pipeline_decompress",
    ],
)
def test_plan_snapshot_matches_golden(name):
    snapshot = build_snapshots()[name]
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    assert snapshot == golden


# Makespans the pre-refactor hand-wired builders produced on representative
# Fig 7 (rows), Fig 10 (multi), and Fig 13 (pipeline-length) configurations:
# seed-42 random walk of 1024 values at rel=1e-3. Lowered plans are
# cycle-exact replicas, so these hold to the cycle; 1% is the hard bar.
MAKESPAN_BASELINES = [
    ("rows", 4, 1, 1, 203100.0),
    ("pipeline", 2, 4, 4, 158499.0),
    ("multi", 1, 4, 1, 205528.0),
    ("multi", 2, 8, 4, 90734.0),
]

DECOMPRESS_BASELINES = [
    ("rows", 2, 1, 1, 265911.0),
    ("pipeline", 2, 3, 3, 138629.0),
]


@pytest.fixture(scope="module")
def walk():
    rng = np.random.default_rng(42)
    return np.cumsum(rng.normal(size=1024)).astype(np.float32)


@pytest.mark.parametrize(
    "strategy,rows,cols,pl,baseline", MAKESPAN_BASELINES
)
def test_compress_makespan_within_one_percent(
    strategy, rows, cols, pl, baseline, walk
):
    sim = WSECereSZ(
        rows=rows, cols=cols, strategy=strategy, pipeline_length=pl
    )
    result = sim.compress(walk, rel=1e-3)
    assert abs(result.makespan_cycles - baseline) <= 0.01 * baseline


@pytest.mark.parametrize(
    "strategy,rows,cols,pl,baseline", DECOMPRESS_BASELINES
)
def test_decompress_makespan_within_one_percent(
    strategy, rows, cols, pl, baseline, walk
):
    stream = WSECereSZ(rows=2, cols=4, strategy="multi").compress(
        walk, rel=1e-3
    ).stream
    sim = WSECereSZ(
        rows=rows, cols=cols, strategy=strategy, pipeline_length=pl
    )
    back, report = sim.decompress_on_wafer(stream)
    assert abs(report.makespan_cycles - baseline) <= 0.01 * baseline
    assert np.array_equal(back, sim.decompress(stream))
