"""Tests for double-precision field support.

SDRBench distributes several datasets in float64; a usable compressor must
honor bounds below float32 resolution when the input (and hence the
reconstruction) is double precision.
"""

import numpy as np
import pytest

from repro import CereSZ
from repro.errors import ErrorBoundError
from repro.core.nd_variant import CereSZND
from repro.metrics.errorbound import check_error_bound


@pytest.fixture
def field64(rng):
    return np.cumsum(rng.normal(size=5000))  # float64 random walk


class TestFloat64RoundTrip:
    def test_dtype_preserved(self, codec, field64):
        result = codec.compress(field64, rel=1e-4)
        back = codec.decompress(result.stream)
        assert back.dtype == np.float64
        assert check_error_bound(field64, back, result.eps)

    def test_float32_still_default(self, codec, smooth_field):
        result = codec.compress(smooth_field, rel=1e-3)
        assert codec.decompress(result.stream).dtype == np.float32

    def test_bounds_below_f32_resolution(self, codec, field64):
        """REL 1e-7 on O(100) values needs ~1e-5 absolute precision at
        magnitude ~100 — representable in f64, not reliably in f32."""
        result = codec.compress(field64, rel=1e-7)
        back = codec.decompress(result.stream)
        assert check_error_bound(field64, back, result.eps)

    def test_same_bound_fails_in_f32(self, field64):
        f32 = field64.astype(np.float32)
        scale = float(np.max(np.abs(f32)))
        with pytest.raises(ErrorBoundError, match="resolution"):
            CereSZ().compress(f32, eps=scale * 1e-9)

    def test_original_bytes_counts_doubles(self, codec, field64):
        result = codec.compress(field64, rel=1e-4)
        assert result.original_bytes == field64.size * 8

    def test_bit_rate_uses_element_count(self, codec, field64):
        result = codec.compress(field64, rel=1e-4)
        assert result.bit_rate == pytest.approx(
            8.0 * len(result.stream) / field64.size
        )

    def test_constant_field64(self, codec):
        data = np.full(100, np.pi)  # float64
        result = codec.compress(data, rel=1e-3)
        back = codec.decompress(result.stream)
        assert back.dtype == np.float64
        assert np.array_equal(back, data)

    def test_nd_variant_in_f64(self, field64):
        codec = CereSZND()
        data = field64[:4096].reshape(64, 64)
        result = codec.compress(data, rel=1e-6)
        back = codec.decompress(result.stream)
        assert back.dtype == np.float64
        assert check_error_bound(data, back, result.eps)

    def test_2d_f64_shape(self, codec, rng):
        data = rng.normal(size=(40, 50))
        result = codec.compress(data, eps=1e-5)
        back = codec.decompress(result.stream)
        assert back.shape == (40, 50)
        assert back.dtype == np.float64
