"""Tests for pipeline state, sub-stage execution, and record assembly."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.core.encoding import encode_blocks
from repro.core.mapping import (
    PipelineState,
    finalize_record,
    run_substage,
    substage_cycles,
)
from repro.core.stages import compression_substages
from repro.wse.cost import PAPER_CYCLE_MODEL


def fresh_state(values, eps=0.1):
    arr = np.asarray(values, dtype=np.float64)
    return PipelineState(phase="raw", block_size=arr.size, values=arr)


def run_all(values, eps, fl_plan=64):
    state = fresh_state(values)
    for stage in compression_substages(fl_plan, len(values)):
        state = run_substage(stage, state, eps)
    return state


class TestStageSemantics:
    def test_full_pipeline_matches_reference_encoder(self):
        rng = np.random.default_rng(0)
        data = np.cumsum(rng.normal(size=32))
        eps = 0.05
        state = run_all(data, eps)
        record = finalize_record(state)

        from repro.core.quantize import prequantize
        from repro.core.lorenzo import lorenzo_predict

        codes = prequantize(data, eps).reshape(1, -1)
        residuals = lorenzo_predict(codes)
        assert record == encode_blocks(residuals)

    def test_zero_block_record(self):
        state = run_all(np.zeros(32), 0.1)
        record = finalize_record(state)
        assert record == b"\x00\x00\x00\x00"  # fl=0 header only

    def test_multiplication_then_addition_is_quantization(self):
        state = fresh_state([0.83] * 8)
        stages = compression_substages(64, 8)
        state = run_substage(stages[0], state, 0.01)  # multiplication
        assert state.phase == "scaled"
        state = run_substage(stages[1], state, 0.01)  # addition
        assert state.phase == "codes"
        assert state.values[0] == 42  # round(0.83 / 0.02)

    def test_stage_order_enforced(self):
        state = fresh_state(np.ones(8))
        stages = compression_substages(2, 8)
        with pytest.raises(CompressionError):
            run_substage(stages[2], state, 0.1)  # lorenzo before quantize

    def test_sign_stage_splits_magnitude_and_sign(self):
        state = fresh_state(np.arange(8) - 4.0)
        eps = 0.5
        for stage in compression_substages(64, 8)[:4]:  # through sign
            state = run_substage(stage, state, eps)
        assert state.phase == "mags"
        assert (state.values >= 0).all()
        assert state.signs is not None

    def test_idle_shuffle_bits_do_nothing(self):
        """Planned bits beyond the block's fl are no-ops (schedule sized
        for the sampled max)."""
        state = run_all([1.0] * 32, 0.1, fl_plan=20)
        assert state.bits_done == state.fl < 20

    def test_finalize_requires_completed_state(self):
        with pytest.raises(CompressionError):
            finalize_record(fresh_state(np.ones(8)))


class TestStateSerialization:
    def test_round_trip_raw(self):
        state = fresh_state(np.arange(32, dtype=np.float64))
        back = PipelineState.from_array(state.to_array())
        assert back.phase == "raw"
        assert np.array_equal(back.values, state.values)

    def test_round_trip_mid_encode(self):
        state = run_all(np.linspace(-5, 5, 32), 0.01, fl_plan=64)
        vec = state.to_array()
        back = PipelineState.from_array(vec)
        assert back.phase == state.phase
        assert back.fl == state.fl
        assert back.max_mag == state.max_mag
        assert back.bits_done == state.bits_done
        assert np.array_equal(back.signs, state.signs)
        for a, b in zip(back.shuffled, state.shuffled):
            assert np.array_equal(a, b)

    def test_serialized_record_equals_direct_record(self):
        state = run_all(np.linspace(-5, 5, 32), 0.01)
        back = PipelineState.from_array(state.to_array())
        assert finalize_record(back) == finalize_record(state)

    def test_padding_tolerated(self):
        """Fabric buffers are fixed-extent; trailing zeros must parse."""
        state = run_all(np.linspace(0, 1, 32), 0.01)
        vec = state.to_array()
        padded = np.zeros(vec.size + 40)
        padded[: vec.size] = vec
        back = PipelineState.from_array(padded)
        assert finalize_record(back) == finalize_record(state)


class TestStateValidation:
    """Corrupted state vectors must fail loudly, naming the bad value."""

    def _vec(self):
        return run_all(np.linspace(0, 1, 32), 0.01).to_array()

    def test_to_array_rejects_unknown_phase(self):
        state = fresh_state(np.ones(8))
        state.phase = "garbled"
        with pytest.raises(CompressionError, match="unknown phase 'garbled'"):
            state.to_array()

    def test_rejects_short_vector(self):
        with pytest.raises(CompressionError, match=r"5-word header.*\(3,\)"):
            PipelineState.from_array(np.zeros(3))

    def test_rejects_matrix(self):
        with pytest.raises(CompressionError, match="5-word header"):
            PipelineState.from_array(np.zeros((4, 8)))

    @pytest.mark.parametrize("bad", [-1.0, 99.0, 2.5, np.nan, np.inf])
    def test_rejects_bad_phase_index(self, bad):
        vec = self._vec()
        vec[0] = bad
        with pytest.raises(CompressionError, match="invalid phase index"):
            PipelineState.from_array(vec)

    @pytest.mark.parametrize("bad", [0.0, -32.0, 12.0, 31.5, np.nan])
    def test_rejects_bad_block_size(self, bad):
        vec = self._vec()
        vec[1] = bad
        with pytest.raises(CompressionError, match="invalid block size"):
            PipelineState.from_array(vec)

    def test_block_size_message_names_value(self):
        vec = self._vec()
        vec[1] = 12.0
        with pytest.raises(CompressionError, match="12.0"):
            PipelineState.from_array(vec)

    @pytest.mark.parametrize("bad", [-1.0, 3.5, np.nan])
    def test_rejects_bad_bits_done(self, bad):
        vec = self._vec()
        vec[4] = bad
        with pytest.raises(CompressionError, match="invalid bits_done"):
            PipelineState.from_array(vec)

    def test_rejects_truncated_payload(self):
        vec = self._vec()
        with pytest.raises(
            CompressionError, match=rf"truncated.*needs {vec.size} words"
        ):
            PipelineState.from_array(vec[:-1])

    def test_truncation_message_names_counts(self):
        vec = self._vec()
        short = vec[: vec.size - 8]
        with pytest.raises(CompressionError, match=f"got {short.size}"):
            PipelineState.from_array(short)


class TestSubstageCycles:
    def test_regular_stage_uses_declared_cycles(self):
        stages = compression_substages(4)
        mult = stages[0]
        assert substage_cycles(mult, None, PAPER_CYCLE_MODEL, 32) == (
            mult.cycles
        )

    def test_idle_shuffle_is_nearly_free(self):
        stages = compression_substages(8)
        bit7 = stages[-1]
        busy = substage_cycles(bit7, 8, PAPER_CYCLE_MODEL, 32)
        idle = substage_cycles(bit7, 3, PAPER_CYCLE_MODEL, 32)
        assert idle < busy / 50

    def test_active_shuffle_charges_per_bit_cost(self):
        stages = compression_substages(8)
        bit0 = stages[6]
        assert substage_cycles(bit0, 8, PAPER_CYCLE_MODEL, 32) == (
            pytest.approx(PAPER_CYCLE_MODEL.bit_shuffle.cycles(32, 1))
        )


class TestArbitraryPipelineSplits:
    """Property: any contiguous split of the sub-stage chain produces the
    reference record (the state machine is split-point agnostic)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_split_points(self, seed):
        import numpy as np
        from repro.core.quantize import prequantize
        from repro.core.lorenzo import lorenzo_predict

        rng = np.random.default_rng(seed)
        data = np.cumsum(rng.normal(size=32))
        eps = 0.05
        stages = compression_substages(64, 32)
        # Reference record.
        codes = prequantize(data, eps).reshape(1, -1)
        expected = encode_blocks(lorenzo_predict(codes))

        # Random contiguous grouping, serialized through PipelineState
        # between groups (exactly what the fabric does).
        cuts = sorted(
            rng.choice(
                np.arange(1, len(stages)),
                size=rng.integers(1, 5),
                replace=False,
            ).tolist()
        )
        bounds = [0, *cuts, len(stages)]
        state = fresh_state(data)
        for lo, hi in zip(bounds, bounds[1:]):
            # Serialize across the "fabric" boundary.
            state = PipelineState.from_array(state.to_array())
            for stage in stages[lo:hi]:
                fl_known = state.fl
                if stage.name.startswith("shuffle_bit_") and (
                    fl_known is not None
                    and int(stage.name.rsplit("_", 1)[1]) >= fl_known
                ):
                    continue
                state = run_substage(stage, state, eps)
        assert finalize_record(state) == expected
