"""End-to-end scenarios spanning multiple subsystems.

These tests mirror how a downstream user would combine the pieces: generate
(or load) a field, compress with any of the five codecs, verify the bound,
compare ratios, and validate the simulator against the reference on real
dataset snippets.
"""

import numpy as np
import pytest

from repro import CereSZ
from repro.baselines.base import get_compressor
from repro.core.wse_compressor import WSECereSZ
from repro.core.quantize import relative_to_absolute
from repro.config import WaferConfig
from repro.datasets import generate_field, iter_fields
from repro.metrics.errorbound import check_error_bound
from repro.metrics.quality import psnr, ssim
from repro.perf.wafer import measure_workload, wafer_throughput

ALL_COMPRESSORS = ("CereSZ", "SZp", "cuSZp", "cuSZ", "SZ")
ALL_DATASETS = ("CESM-ATM", "Hurricane", "QMCPack", "NYX", "RTM", "HACC")


class TestEveryCompressorOnEveryDataset:
    @pytest.mark.parametrize("dataset", ALL_DATASETS)
    @pytest.mark.parametrize("name", ALL_COMPRESSORS)
    def test_round_trip_with_bound(self, dataset, name):
        codec = get_compressor(name)
        field = generate_field(dataset, 0)
        # Keep the Huffman-decode path affordable for cuSZ/SZ.
        flat = field.reshape(-1)[: 32 * 1500]
        result = codec.compress(flat, rel=1e-3)
        back = codec.decompress(result.stream)
        assert back.shape == flat.shape
        assert check_error_bound(flat, back, result.eps)
        assert result.ratio > 1.0


class TestSimulatorAgainstReferenceOnRealData:
    @pytest.mark.parametrize("dataset", ["NYX", "HACC", "RTM"])
    def test_multi_strategy_bit_exact(self, dataset):
        field = generate_field(dataset, 0).reshape(-1)[: 32 * 30]
        eps = relative_to_absolute(field, 1e-3)
        ref = CereSZ().compress(field, eps=eps)
        sim = WSECereSZ(rows=2, cols=3, strategy="multi")
        result = sim.compress(field, eps=eps)
        assert result.stream == ref.stream

    def test_simulated_timing_feeds_the_model(self):
        """The discrete-event makespan and the analytic model must agree
        on single-PE compression cost (the model's base case)."""
        field = generate_field("QMCPack", 0).reshape(-1)[: 32 * 16]
        eps = relative_to_absolute(field, 1e-3)
        sim = WSECereSZ(rows=1, cols=1, strategy="rows")
        result = sim.compress(field, eps=eps)
        workload = measure_workload(field, eps)
        model_cycles = workload.mean_cycles("compress") * workload.num_blocks
        # The sim adds activation/transfer latencies; same ballpark.
        assert result.makespan_cycles == pytest.approx(model_cycles, rel=0.1)


class TestQualityAcrossCodecs:
    def test_prequant_family_same_psnr(self):
        field = generate_field("NYX", 2)  # temperature
        values = {}
        for name in ("CereSZ", "SZp", "cuSZ"):
            codec = get_compressor(name)
            result = codec.compress(field, rel=1e-3)
            back = codec.decompress(result.stream)
            values[name] = psnr(field, back)
        assert values["CereSZ"] == pytest.approx(values["SZp"], abs=1e-9)
        assert values["CereSZ"] == pytest.approx(values["cuSZ"], abs=1e-9)

    def test_tight_bound_means_high_ssim(self):
        field = generate_field("Hurricane", 2)
        codec = CereSZ()
        result = codec.compress(field, rel=1e-4)
        back = codec.decompress(result.stream)
        assert ssim(field, back) > 0.999


class TestThroughputPipelineEndToEnd:
    def test_field_to_gbs(self):
        """The full Figs 11/12 path for one field."""
        field = generate_field("RTM", 5)
        eps = relative_to_absolute(field, 1e-3)
        workload = measure_workload(field, eps)
        wafer = WaferConfig(rows=512, cols=512)
        comp = wafer_throughput(workload, wafer, direction="compress")
        decomp = wafer_throughput(workload, wafer, direction="decompress")
        assert 100 < comp.throughput_gbs < 1200
        assert decomp.throughput_gbs > comp.throughput_gbs

    def test_average_headline_bands(self):
        """Cross-dataset averages sit in the paper's reported region
        (shape fidelity: hundreds of GB/s, decomp/comp ~1.2-1.3x)."""
        wafer = WaferConfig(rows=512, cols=512)
        comps, decomps = [], []
        for dataset in ALL_DATASETS:
            for _, field in iter_fields(dataset, limit=2):
                for rel in (1e-2, 1e-4):
                    eps = relative_to_absolute(field, rel)
                    w = measure_workload(field, eps)
                    comps.append(
                        wafer_throughput(w, wafer).throughput_gbs
                    )
                    decomps.append(
                        wafer_throughput(
                            w, wafer, direction="decompress"
                        ).throughput_gbs
                    )
        avg_c = float(np.mean(comps))
        avg_d = float(np.mean(decomps))
        assert 300 <= avg_c <= 900  # paper: 457.35
        assert 1.1 <= avg_d / avg_c <= 1.45  # paper: 1.27


class TestStreamsAreSelfDescribing:
    @pytest.mark.parametrize("name", ALL_COMPRESSORS)
    def test_fresh_instance_decodes(self, name, smooth_field):
        """No out-of-band state: any instance decodes any stream."""
        stream = get_compressor(name).compress(smooth_field, rel=1e-3).stream
        back = get_compressor(name).decompress(stream)
        assert back.shape == smooth_field.shape
