"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; letting them rot is worse than
not having them. Each runs in a subprocess with the repo's interpreter and
must exit 0 with its expected closing output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

CASES = {
    "quickstart.py": "error bound verified",
    "climate_insitu.py": "framed archive",
    "rtm_seismic_stream.py": "2,800 TB",
    "wse_mapping_explorer.py": "relay",
    "compressor_shootout.py": "rate-distortion",
}


@pytest.mark.slow
@pytest.mark.parametrize("script,expected", sorted(CASES.items()))
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout, (script, result.stdout[-500:])


def test_every_example_has_a_smoke_test():
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    assert shipped == set(CASES), shipped.symmetric_difference(set(CASES))
