"""Shard-engine resilience: watchdog, bounded retries, partial salvage.

The one true watchdog lives in the process-pool branch of
:func:`run_pool_resilient` — a hung worker is *killed* (the pool is
terminated), the item retried, and after the retry budget the failure
surfaces as a structured, picklable :class:`WorkerError` naming the shard.
"""

import pickle
import time

import numpy as np
import pytest

from repro.core.compressor import CereSZ
from repro.core.parallel import (
    compress_sharded,
    decompress_sharded,
    run_pool_resilient,
)
from repro.errors import CompressionError, WorkerError
from repro.faults.report import ShardFailure
from repro.obs.metrics import MetricsRegistry

EPS = 1e-3


# Module-level so the multiprocessing pool can pickle them.
def _double(x):
    return x * 2


def _sleep_if_two(x):
    if x == 2:
        time.sleep(30)
    return x * 10


def _fail_if_two(x):
    if x == 2:
        raise ValueError("shard 2 always dies")
    return x * 10


class TestInlineAndThreads:
    def test_inline_success_path(self):
        results, failures = run_pool_resilient(_double, [1, 2, 3], jobs=1)
        assert results == [2, 4, 6]
        assert failures == ()

    def test_transient_failure_recovered_by_retry(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ValueError("transient")
            return x + 1

        results, failures = run_pool_resilient(
            flaky, [7], jobs=1, retries=2, backoff=0.001
        )
        assert results == [8]
        assert failures == ()
        assert calls["n"] == 3

    def test_terminal_failure_raises_worker_error(self):
        with pytest.raises(WorkerError) as exc_info:
            run_pool_resilient(
                _fail_if_two, [0, 1, 2, 3], jobs=1, retries=1, backoff=0.001
            )
        err = exc_info.value
        assert err.shard == 2  # item index (which here equals the value)
        assert err.attempts == 2  # 1 try + 1 retry
        assert len(err.failures) == 1
        assert err.failures[0].kind == "error"
        assert "ValueError" in err.failures[0].error

    def test_salvage_returns_partial_results(self):
        results, failures = run_pool_resilient(
            _fail_if_two, [0, 1, 2, 3], jobs=1, retries=0, salvage=True
        )
        assert results == [0, 10, None, 30]
        assert len(failures) == 1
        assert failures[0].index == 2

    def test_thread_pool_retry_recovers(self):
        calls = {"n": 0}

        def flaky(x):
            if x == 1:
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ValueError("first attempt dies")
            return x * 3

        results, failures = run_pool_resilient(
            flaky, [0, 1, 2, 3], jobs=4, retries=1, backoff=0.001
        )
        assert results == [0, 3, 6, 9]
        assert failures == ()

    def test_negative_retries_rejected(self):
        with pytest.raises(CompressionError, match="retries"):
            run_pool_resilient(_double, [1], jobs=1, retries=-1)

    def test_retry_metrics_counted(self):
        registry = MetricsRegistry()
        with pytest.raises(WorkerError):
            run_pool_resilient(
                _fail_if_two, [1, 2], jobs=1, retries=2, backoff=0.001,
                metrics=registry,
            )
        retries = registry.get("host.pool_retries")
        assert retries is not None and retries.total() == 2


class TestProcessWatchdog:
    def test_hung_worker_killed_retried_then_structured_error(self):
        """The ISSUE 5 acceptance case: a worker that sleeps forever is
        killed by the watchdog, retried, and fails with a structured error
        once the retry budget is spent — in bounded wall time."""
        start = time.monotonic()
        with pytest.raises(WorkerError) as exc_info:
            run_pool_resilient(
                _sleep_if_two, [0, 1, 2, 3], jobs=2,
                processes=True, timeout=0.5, retries=1, backoff=0.01,
            )
        elapsed = time.monotonic() - start
        assert elapsed < 20  # nothing waited out the 30s sleep
        err = exc_info.value
        assert err.shard == 2
        assert err.attempts == 2
        assert err.failures[0].kind == "timeout"
        assert "killed" in err.failures[0].error

    def test_hung_worker_salvaged(self):
        results, failures = run_pool_resilient(
            _sleep_if_two, [0, 1, 2, 3], jobs=2,
            processes=True, timeout=0.5, retries=0, backoff=0.01,
            salvage=True,
        )
        assert results[0] == 0 and results[1] == 10 and results[3] == 30
        assert results[2] is None
        assert failures[0].kind == "timeout"

    def test_timeout_metrics_counted(self):
        registry = MetricsRegistry()
        run_pool_resilient(
            _sleep_if_two, [2], jobs=1,
            processes=True, timeout=0.3, retries=1, backoff=0.01,
            salvage=True, metrics=registry,
        )
        timeouts = registry.get("host.pool_timeouts")
        assert timeouts is not None and timeouts.total() == 2

    def test_healthy_process_pool_matches_inline(self):
        inline, _ = run_pool_resilient(_double, [1, 2, 3, 4], jobs=1)
        pooled, _ = run_pool_resilient(
            _double, [1, 2, 3, 4], jobs=2, processes=True, timeout=30
        )
        assert pooled == inline


class TestPicklability:
    def test_worker_error_round_trips_through_pickle(self):
        err = WorkerError(
            "shard 3 failed",
            shard=3,
            attempts=2,
            failures=(
                ShardFailure(index=3, attempts=2, kind="timeout", error="x"),
            ),
        )
        back = pickle.loads(pickle.dumps(err))
        assert back.shard == 3
        assert back.attempts == 2
        assert back.failures[0].kind == "timeout"
        assert str(back) == str(err)


class TestShardedEndToEnd:
    def _data(self):
        rng = np.random.default_rng(17)
        return rng.normal(size=40_000).cumsum().astype(np.float32)

    def test_resilient_compress_is_byte_identical(self):
        data = self._data()
        plain = compress_sharded(data, eps=EPS, shard_elements=10_000)
        resilient = compress_sharded(
            data, eps=EPS, shard_elements=10_000,
            timeout=60, retries=2, processes=True,
        )
        assert resilient.stream == plain.stream

    def test_resilient_decompress_matches(self):
        data = self._data()
        stream = compress_sharded(data, eps=EPS, shard_elements=10_000).stream
        plain = CereSZ().decompress(stream)
        resilient = decompress_sharded(stream, timeout=60, retries=2)
        assert np.array_equal(resilient, plain)
