"""CRC32C primitives: known vectors, incremental use, combine, and the
vectorized many-region path the integrity layer leans on."""

import numpy as np
import pytest

from repro.faults.crc32c import crc32c, crc32c_combine, crc32c_many

CHECK_VECTOR = 0xE3069283  # iSCSI/ext4 Castagnoli check value


class TestSingleBuffer:
    def test_known_vector(self):
        assert crc32c(b"123456789") == CHECK_VECTOR

    def test_empty_is_zero(self):
        assert crc32c(b"") == 0

    def test_empty_continues_previous(self):
        assert crc32c(b"", crc=0xDEADBEEF) == 0xDEADBEEF

    def test_incremental_matches_whole(self):
        a, b = b"12345", b"6789"
        assert crc32c(b, crc=crc32c(a)) == CHECK_VECTOR

    def test_accepts_numpy_views(self):
        data = np.arange(1000, dtype=np.float32)
        assert crc32c(data) == crc32c(data.tobytes())

    def test_strip_parallel_path_matches_byte_loop(self):
        """Buffers past the strip threshold fold 64 strips with the GF(2)
        combine operator; the result must equal a plain incremental CRC."""
        rng = np.random.default_rng(3)
        big = rng.integers(0, 256, size=40_000, dtype=np.uint8).tobytes()
        incremental = 0
        for lo in range(0, len(big), 1000):  # chunks below the threshold
            incremental = crc32c(big[lo : lo + 1000], crc=incremental)
        assert crc32c(big) == incremental

    def test_single_byte_flip_always_detected(self):
        data = bytearray(b"the quick brown fox jumps over the lazy dog")
        ref = crc32c(bytes(data))
        for i in range(len(data)):
            data[i] ^= 0x40
            assert crc32c(bytes(data)) != ref
            data[i] ^= 0x40


class TestCombine:
    def test_combine_matches_concatenation(self):
        a, b = b"hello, ", b"world"
        assert crc32c_combine(crc32c(a), crc32c(b), len(b)) == crc32c(a + b)

    def test_combine_with_empty_suffix(self):
        assert crc32c_combine(0x12345678, 0, 0) == 0x12345678

    def test_combine_various_lengths(self):
        rng = np.random.default_rng(7)
        blob = rng.integers(0, 256, size=700, dtype=np.uint8).tobytes()
        for cut in (1, 63, 64, 65, 255, 256, 511):
            a, b = blob[:cut], blob[cut:]
            assert crc32c_combine(
                crc32c(a), crc32c(b), len(b)
            ) == crc32c(blob)


class TestManyRegions:
    def test_matches_per_region_scalar(self):
        rng = np.random.default_rng(11)
        buf = rng.integers(0, 256, size=512, dtype=np.uint8).tobytes()
        starts = np.array([0, 10, 100, 300, 511])
        lengths = np.array([10, 90, 200, 211, 1])
        got = crc32c_many(buf, starts, lengths)
        want = [
            crc32c(buf[s : s + n])
            for s, n in zip(starts.tolist(), lengths.tolist())
        ]
        assert got.tolist() == want

    def test_zero_length_regions(self):
        got = crc32c_many(b"abcdef", [0, 3], [0, 0])
        assert got.tolist() == [0, 0]

    def test_init_seeds_split_coverage(self):
        """init= continues each region from a prior CRC — the exact shape
        the v3 group CRC uses (fl slice ++ record slice)."""
        buf = b"AAAABBBBCCCCDDDD"
        fl = [crc32c(buf[0:2]), crc32c(buf[4:6])]
        got = crc32c_many(buf, [8, 12], [4, 4], init=fl)
        assert got.tolist() == [
            crc32c(buf[0:2] + buf[8:12]),
            crc32c(buf[4:6] + buf[12:16]),
        ]

    def test_region_overrun_raises(self):
        with pytest.raises(ValueError, match="extends"):
            crc32c_many(b"abc", [0], [4])

    def test_negative_region_raises(self):
        with pytest.raises(ValueError, match="negative"):
            crc32c_many(b"abc", [0], [-1])

    def test_empty_region_list(self):
        assert crc32c_many(b"abc", [], []).size == 0
