"""Deterministic fault injection into the simulated wafer.

The contract under test: a seeded :class:`FaultPlan` produces the same
injections, the same :class:`FaultReport`, and the same ``faults.*``
metrics whether the mesh simulates serially or row-partitioned across
worker processes — and a fault the mapping absorbs leaves the compressed
stream bit-identical to a fault-free run.
"""

import numpy as np
import pytest

from repro.core.wse_compressor import WSECereSZ
from repro.errors import DeadlockError, ReproError
from repro.faults import FaultPlan, FaultReport, PEHalt, SramBitFlip
from repro.faults.plan import parse_fault_spec

EPS = 0.01


def _field(n: int = 512, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=n).cumsum().astype(np.float32)


HALT_PLAN = parse_fault_spec("seed:7;halt:1,0@50")


def _compress_with(plan, *, jobs: int = 1, metrics: bool = False):
    codec = WSECereSZ(
        4, 4, strategy="rows", jobs=jobs, faults=plan,
        collect_metrics=metrics,
    )
    return codec, codec.compress(_field(), eps=EPS)


class TestHaltStalls:
    def test_halt_raises_structured_deadlock(self):
        codec = WSECereSZ(4, 4, strategy="rows", faults=HALT_PLAN)
        with pytest.raises(DeadlockError) as exc_info:
            codec.compress(_field(), eps=EPS)
        report = exc_info.value.report
        assert isinstance(report, FaultReport)
        assert report.reason == "deadlock"
        assert (1, 0) in report.halted_pes
        assert any(f.kind == "halt" for f in report.injected)
        assert report.seed == 7
        assert report.last_progress_cycle >= 50
        # The report names at least one wedged transfer on the halted row.
        assert any(s.row == 1 for s in report.stuck)

    def test_report_survives_json_round_trip(self):
        codec = WSECereSZ(4, 4, strategy="rows", faults=HALT_PLAN)
        with pytest.raises(DeadlockError) as exc_info:
            codec.compress(_field(), eps=EPS)
        import json

        payload = json.loads(exc_info.value.report.to_json())
        assert payload["reason"] == "deadlock"
        assert payload["seed"] == 7
        assert [1, 0] in payload["halted_pes"]


class TestPartitionInvariance:
    def _stall_report(self, jobs: int) -> FaultReport:
        codec = WSECereSZ(
            4, 4, strategy="rows", jobs=jobs, faults=HALT_PLAN,
            collect_metrics=True,
        )
        with pytest.raises(DeadlockError) as exc_info:
            codec.compress(_field(), eps=EPS)
        return exc_info.value.report, codec.last_metrics

    def test_report_identical_serial_vs_partitioned(self):
        serial, serial_metrics = self._stall_report(jobs=1)
        parallel, parallel_metrics = self._stall_report(jobs=4)
        assert serial == parallel  # frozen dataclass: full field equality

    def test_fault_metrics_identical_serial_vs_partitioned(self):
        _, serial_metrics = self._stall_report(jobs=1)
        _, parallel_metrics = self._stall_report(jobs=4)
        for name in ("faults.injected", "faults.detected"):
            a = serial_metrics.get(name)
            b = parallel_metrics.get(name)
            assert a is not None and b is not None, name
            assert a.total() == b.total(), name
            assert a.total() >= 1

    def test_partitioned_message_names_the_shard(self):
        codec = WSECereSZ(4, 4, strategy="rows", jobs=4, faults=HALT_PLAN)
        with pytest.raises(DeadlockError, match=r"\[shard \d+, rows"):
            codec.compress(_field(), eps=EPS)


class TestAbsorbedFaults:
    def test_noop_flip_leaves_stream_bit_identical(self):
        """A bit flip aimed at a buffer the mapping never allocates is
        logged but absorbed: the run completes and the stream matches a
        fault-free run byte for byte."""
        plan = FaultPlan(
            seed=3,
            faults=(
                SramBitFlip(
                    row=0, col=0, buffer="no_such_buffer", bit=5, at_cycle=40
                ),
            ),
        )
        _, faulted = _compress_with(plan, metrics=True)
        _, clean = _compress_with(None)
        assert faulted.result.stream == clean.result.stream

    def test_absorbed_fault_still_counted(self):
        plan = FaultPlan(
            seed=3,
            faults=(
                SramBitFlip(
                    row=0, col=0, buffer="no_such_buffer", bit=5, at_cycle=40
                ),
            ),
        )
        codec, _ = _compress_with(plan, metrics=True)
        injected = codec.last_metrics.get("faults.injected")
        assert injected is not None and injected.total() == 1


class TestValidation:
    def test_fault_outside_mesh_rejected(self):
        # Validation now happens at construction (plan-installation time),
        # naming the offending fault — not deep inside a simulated run.
        plan = FaultPlan(seed=0, faults=(PEHalt(row=99, col=0, at_cycle=10),))
        with pytest.raises(ReproError, match=r"outside.*halt PE\(99,0\)"):
            WSECereSZ(4, 4, strategy="rows", faults=plan)

    def test_fault_outside_mesh_rejected_at_install(self):
        # The injector still validates at install for engines built by
        # hand (not through WSECereSZ).
        from repro.faults.inject import FaultInjector
        from repro.wse.engine import Engine
        from repro.wse.fabric import Fabric

        plan = FaultPlan(seed=0, faults=(PEHalt(row=99, col=0, at_cycle=10),))
        injector = FaultInjector(plan)
        with pytest.raises(ReproError, match="outside"):
            Engine(Fabric(4, 4), faults=injector)
