"""Exhaustive corruption properties.

Two sweeps over small containers:

- **Every-byte flip** (ISSUE 5 satellite): for each byte of a checksummed
  stream, flipping it must leave strict decode either bit-exact or raising
  a structured :class:`FormatError`/:class:`ContainerError` — never a raw
  numpy/struct exception, never silently wrong data. Salvage must always
  terminate, and for flips outside the header it must return the intact
  blocks bit-exact with an honest :class:`SalvageReport`.
- **Seeded random truncation** (100 cases per container version): shard
  table readers and the sharded decoder raise :class:`ContainerError`
  with no raw ``struct.error`` / ``IndexError`` escaping.
"""

import numpy as np
import pytest

from repro.core.compressor import CereSZ
from repro.core.decompressor import salvage_decompress
from repro.core.format import StreamHeader
from repro.core.parallel import (
    compress_sharded,
    decompress_sharded,
    read_shard_table,
)
from repro.errors import ContainerError, FormatError, ReproError

EPS = 1e-2


def _small_stream() -> tuple[np.ndarray, bytes, int]:
    """A compact v3 stream with several CRC groups (flipping every byte of
    a big stream would dominate the suite's runtime)."""
    rng = np.random.default_rng(21)
    codec = CereSZ()
    n = codec.block_size * 10
    data = (rng.normal(size=n).cumsum() / 50).astype(np.float32)
    res = codec.compress(data, eps=EPS, checksum=True, crc_group=2)
    _, header_end = StreamHeader.unpack(res.stream)
    return data, res.stream, header_end


class TestEveryByteFlip:
    def test_flip_every_byte(self):
        data, stream, header_end = _small_stream()
        codec = CereSZ()
        baseline = codec.decompress(stream)
        L = codec.block_size
        buf = bytearray(stream)
        outcomes = {"exact": 0, "raised": 0, "salvaged": 0}
        for at in range(len(buf)):
            buf[at] ^= 0x01
            bad = bytes(buf)
            buf[at] ^= 0x01

            # Strict decode: bit-exact or a structured refusal.
            try:
                out = codec.decompress(bad)
            except FormatError:
                outcomes["raised"] += 1
                strict_raised = True
            else:
                # CRC32C detects all single-byte errors in covered spans;
                # a successful decode means the flip landed in dead bytes
                # (there are none today, but the property is "not wrong",
                # not "always caught").
                assert np.array_equal(out, baseline), (
                    f"flip at byte {at} decoded to different data "
                    "without an error"
                )
                outcomes["exact"] += 1
                strict_raised = False

            # Salvage: always terminates; never raises anything unstructured.
            try:
                values, report = salvage_decompress(bad, original=data)
            except ReproError:
                # Only acceptable when the header itself is unusable.
                assert at < header_end, (
                    f"salvage refused a body flip at byte {at}"
                )
                continue
            if at < header_end:
                # A header flip may corrupt the geometry salvage needs; the
                # only guarantee is termination with a report.
                continue
            # Body flip with intact header: intact blocks are bit-exact and
            # the report's loss accounting matches the values returned.
            assert strict_raised or report.clean
            lost = set(report.lost_block_indices)
            flat = values.reshape(-1)
            base = baseline.reshape(-1)
            for b in range(report.total_blocks):
                if b not in lost:
                    lo, hi = b * L, min((b + 1) * L, base.size)
                    assert np.array_equal(flat[lo:hi], base[lo:hi]), (
                        f"flip at byte {at}: intact block {b} not bit-exact"
                    )
            assert report.bound is not None and report.bound.ok, (
                f"flip at byte {at}: bound audit failed on intact region"
            )
            if not report.clean:
                outcomes["salvaged"] += 1
        # Sanity on the sweep itself: most flips must be caught, and the
        # record region must have produced salvage recoveries.
        assert outcomes["raised"] > len(buf) // 2
        assert outcomes["salvaged"] > 0


class TestSeededTruncationFuzz:
    @pytest.mark.parametrize("checksum", [False, True], ids=["v1", "v2"])
    def test_hundred_random_truncations(self, checksum):
        rng = np.random.default_rng(5 if checksum else 6)
        data = np.linspace(0, 1, 40_000, dtype=np.float32)
        stream = compress_sharded(
            data, eps=EPS, shard_elements=10_000, checksum=checksum
        ).stream
        for case in range(100):
            cut = int(rng.integers(0, len(stream)))
            short = stream[:cut]
            with pytest.raises(ContainerError):
                read_shard_table(short)
            with pytest.raises(ReproError) as exc_info:
                decompress_sharded(short)
            # Structured error from our hierarchy, not a raw struct/index
            # crash wrapped by pytest.
            assert isinstance(exc_info.value, ReproError), case

    def test_truncation_errors_carry_offsets(self):
        data = np.linspace(0, 1, 40_000, dtype=np.float32)
        stream = compress_sharded(
            data, eps=EPS, shard_elements=10_000, checksum=True
        ).stream
        with pytest.raises(ContainerError) as exc_info:
            read_shard_table(stream[:10])
        assert exc_info.value.offset is not None

    def test_extension_is_harmless_or_structured(self):
        """Appending trailing garbage must decode clean or raise
        structured (spans are explicit, so clean is expected)."""
        codec = CereSZ()
        data = np.linspace(0, 1, 40_000, dtype=np.float32)
        stream = compress_sharded(data, eps=EPS, shard_elements=10_000).stream
        out = codec.decompress(stream + b"\xab" * 64)
        assert out.size == data.size
