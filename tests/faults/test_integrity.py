"""Container integrity (CSZ1 v3 / CSZX v2) and salvage decoding.

The blast-radius contract: one flipped byte in a checksummed stream costs
at most one CRC group of blocks; everything else decodes bit-exact, and
``verify`` locates the damage without decoding a single payload.
"""

import numpy as np
import pytest

from repro.core.compressor import CereSZ
from repro.core.decompressor import salvage_decompress, verify_stream
from repro.core.format import (
    DEFAULT_CRC_GROUP,
    FORMAT_VERSION_CHECKSUM,
    StreamHeader,
)
from repro.core.integrity import read_checksum_layout
from repro.core.parallel import (
    compress_sharded,
    read_shard_container,
    read_shard_table,
)
from repro.errors import ContainerError, FormatError
from repro.obs.metrics import MetricsRegistry

EPS = 1e-3


def _field(n: int = 20_000, seed: int = 2) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=n).cumsum().astype(np.float32)


def _flip(stream: bytes, at: int, bit: int = 0x01) -> bytes:
    buf = bytearray(stream)
    buf[at] ^= bit
    return bytes(buf)


def _layout(stream: bytes):
    header, offset = StreamHeader.unpack(stream)
    return header, read_checksum_layout(stream, header, offset)


class TestRoundTrip:
    def test_checksummed_stream_decodes_bit_exact(self):
        codec = CereSZ()
        data = _field()
        res = codec.compress(data, eps=EPS, checksum=True)
        plain = codec.compress(data, eps=EPS, index=True)
        out = codec.decompress(res.stream)
        assert np.array_equal(out, codec.decompress(plain.stream))
        header, _ = StreamHeader.unpack(res.stream)
        assert header.version == FORMAT_VERSION_CHECKSUM
        assert header.checksum and header.indexed
        assert header.crc_group == DEFAULT_CRC_GROUP

    def test_overhead_under_two_percent(self):
        codec = CereSZ()
        data = _field()
        with_crc = codec.compress(data, eps=EPS, checksum=True)
        without = codec.compress(data, eps=EPS, index=True)
        overhead = (len(with_crc.stream) - len(without.stream)) / len(
            without.stream
        )
        assert overhead < 0.02

    def test_legacy_streams_unchanged(self):
        """Default compression must stay byte-identical to pre-CRC output:
        no version bump, no flag, no hidden tail."""
        codec = CereSZ()
        data = _field(4000)
        stream = codec.compress(data, eps=EPS, index=True).stream
        header, _ = StreamHeader.unpack(stream)
        assert not header.checksum
        assert header.crc_group == 0
        assert header.index_bytes == header.num_blocks

    def test_custom_crc_group(self):
        codec = CereSZ()
        res = codec.compress(_field(8000), eps=EPS, checksum=True, crc_group=8)
        header, layout = _layout(res.stream)
        assert header.crc_group == 8
        assert layout.num_groups == -(-header.num_blocks // 8)
        assert np.array_equal(codec.decompress(res.stream), codec.decompress(res.stream))


class TestVerify:
    def test_clean_stream_verifies_ok(self):
        res = CereSZ().compress(_field(), eps=EPS, checksum=True)
        report = verify_stream(res.stream)
        assert report.ok
        assert report.checksummed
        assert report.total_blocks > 0
        assert report.corrupt_blocks == ()

    def test_payload_flip_located_to_one_group(self):
        res = CereSZ().compress(_field(), eps=EPS, checksum=True, crc_group=8)
        header, layout = _layout(res.stream)
        bad = _flip(res.stream, layout.records_start + 5)
        report = verify_stream(bad)
        assert not report.ok
        assert report.meta_ok
        assert len(report.corrupt_groups) == 1
        assert len(report.corrupt_blocks) <= 8
        assert 0 in report.corrupt_groups

    def test_meta_flip_reported_not_raised(self):
        res = CereSZ().compress(_field(4000), eps=EPS, checksum=True)
        header, layout = _layout(res.stream)
        bad = _flip(res.stream, layout.records_start - 1)  # meta CRC bytes
        report = verify_stream(bad)
        assert not report.ok
        assert not report.meta_ok

    def test_truncated_tables_reported_not_raised(self):
        res = CereSZ().compress(_field(4000), eps=EPS, checksum=True)
        _, layout = _layout(res.stream)
        report = verify_stream(res.stream[: layout.records_start - 2])
        assert not report.ok
        assert not report.meta_ok

    def test_pre_crc_stream_gets_structural_walk(self):
        res = CereSZ().compress(_field(4000), eps=EPS, index=True)
        report = verify_stream(res.stream)
        assert not report.checksummed
        assert report.meta_ok
        assert "no checksums" in report.describe()


class TestStrictDecode:
    def test_corrupt_payload_raises_container_error(self):
        codec = CereSZ()
        res = codec.compress(_field(), eps=EPS, checksum=True, crc_group=8)
        _, layout = _layout(res.stream)
        bad = _flip(res.stream, layout.records_start + 100)
        with pytest.raises(ContainerError) as exc_info:
            codec.decompress(bad)
        assert exc_info.value.groups  # names the corrupt groups
        assert exc_info.value.blocks

    def test_corrupt_meta_raises_container_error(self):
        codec = CereSZ()
        res = codec.compress(_field(4000), eps=EPS, checksum=True)
        _, layout = _layout(res.stream)
        bad = _flip(res.stream, layout.records_start - 3)
        with pytest.raises(ContainerError, match="meta CRC"):
            codec.decompress(bad)


class TestSalvage:
    def test_payload_flip_costs_exactly_one_group(self):
        codec = CereSZ()
        data = _field()
        res = codec.compress(data, eps=EPS, checksum=True, crc_group=8)
        baseline = codec.decompress(res.stream)
        _, layout = _layout(res.stream)
        bad = _flip(res.stream, layout.records_start + 17)
        values, report = salvage_decompress(bad, original=data)
        assert not report.clean
        assert report.blocks_lost <= 8
        assert report.fill == "zero"
        # Every block outside the lost set is bit-exact.
        L = CereSZ().block_size
        lost = set(report.lost_block_indices)
        blocks = values.reshape(-1)
        base = baseline.reshape(-1)
        for b in range(report.total_blocks):
            lo, hi = b * L, min((b + 1) * L, base.size)
            if b in lost:
                assert np.all(blocks[lo:hi] == 0)
            else:
                assert np.array_equal(blocks[lo:hi], base[lo:hi]), b
        # The error bound still holds everywhere that was recovered.
        assert report.bound is not None and report.bound.ok
        assert report.bound.checked == data.size - report.elements_lost

    def test_fl_flip_localized_by_group_table(self):
        """The group table stores record byte counts, so corrupting a block's
        fl entry must not shift any *other* group's offsets."""
        codec = CereSZ()
        data = _field()
        res = codec.compress(data, eps=EPS, checksum=True, crc_group=8)
        baseline = codec.decompress(res.stream)
        header, layout = _layout(res.stream)
        bad = _flip(res.stream, layout.fl_start + 3, bit=0x80)  # block 3's fl
        values, report = salvage_decompress(bad, original=data)
        assert report.blocks_lost <= header.crc_group
        assert all(b < 8 for b in report.lost_block_indices)  # group 0 only
        L = codec.block_size
        assert np.array_equal(
            values.reshape(-1)[8 * L :], baseline.reshape(-1)[8 * L :]
        )
        assert report.bound.ok

    def test_meta_flip_falls_back_to_full_recovery(self):
        """Destroying the group table leaves the records untouched, so the
        structural fl walk recovers everything bit-exact."""
        codec = CereSZ()
        data = _field(4000)
        res = codec.compress(data, eps=EPS, checksum=True)
        baseline = codec.decompress(res.stream)
        _, layout = _layout(res.stream)
        bad = _flip(res.stream, layout.records_start - 2)
        values, report = salvage_decompress(bad, original=data)
        assert report.blocks_lost == 0
        assert np.array_equal(values, baseline)
        assert any("meta CRC" in n for n in report.notes)

    def test_previous_fill_extends_last_intact_value(self):
        codec = CereSZ()
        data = _field()
        res = codec.compress(data, eps=EPS, checksum=True, crc_group=4)
        baseline = codec.decompress(res.stream).reshape(-1)
        _, layout = _layout(res.stream)
        # Corrupt the *second* group so a preceding intact block exists.
        group1_start = int(layout.group_offsets[1])
        bad = _flip(res.stream, group1_start + 1)
        values, report = salvage_decompress(bad, fill="previous")
        assert report.fill == "previous"
        assert report.blocks_lost > 0
        first_lost = report.lost_block_indices[0]
        L = codec.block_size
        fill_value = values.reshape(-1)[first_lost * L]
        assert fill_value == baseline[first_lost * L - 1]
        assert np.all(
            values.reshape(-1)[first_lost * L : (first_lost + 1) * L]
            == fill_value
        )

    def test_bad_fill_rejected(self):
        res = CereSZ().compress(_field(2000), eps=EPS, checksum=True)
        with pytest.raises(FormatError, match="fill"):
            salvage_decompress(res.stream, fill="interpolate")

    def test_clean_stream_salvages_clean(self):
        codec = CereSZ()
        data = _field(4000)
        res = codec.compress(data, eps=EPS, checksum=True)
        values, report = salvage_decompress(res.stream, original=data)
        assert report.clean
        assert np.array_equal(values, codec.decompress(res.stream))

    def test_metrics_count_losses(self):
        codec = CereSZ()
        res = codec.compress(_field(), eps=EPS, checksum=True, crc_group=8)
        _, layout = _layout(res.stream)
        bad = _flip(res.stream, layout.records_start + 9)
        registry = MetricsRegistry()
        _, report = salvage_decompress(bad, metrics=registry)
        counter = registry.get("salvage.blocks_lost")
        assert counter is not None
        assert counter.total() == report.blocks_lost > 0


class TestShardedIntegrity:
    def _container(self, n: int = 40_000):
        data = _field(n, seed=9)
        res = compress_sharded(
            data, eps=EPS, shard_elements=10_000, checksum=True
        )
        return data, res.stream

    def test_v2_round_trip(self):
        data, stream = self._container()
        table = read_shard_container(stream)
        assert table.checksummed
        assert table.meta_ok
        # The writer rounds the shard size to a block multiple and records
        # the actual value for salvage geometry.
        assert table.shard_elements is not None
        assert table.shard_elements * (len(table.spans) - 1) < data.size
        out = CereSZ().decompress(stream)
        assert out.shape == data.shape

    def test_default_container_stays_v1(self):
        data = _field(40_000, seed=9)
        stream = compress_sharded(data, eps=EPS, shard_elements=10_000).stream
        table = read_shard_container(stream)
        assert table.version == 1
        assert not table.checksummed
        assert table.shard_elements is None

    def test_shard_payload_flip_located_and_salvaged(self):
        data, stream = self._container()
        table = read_shard_container(stream)
        se = table.shard_elements
        lo, hi = table.spans[1]
        bad = _flip(stream, lo + (hi - lo) // 2)
        report = verify_stream(bad)
        assert not report.ok
        assert report.corrupt_shards == (1,)
        values, salvage = salvage_decompress(bad, original=data)
        assert salvage.blocks_lost > 0
        # Every shard but the corrupted one comes back bit-exact.
        baseline = CereSZ().decompress(stream)
        assert np.array_equal(values[:se], baseline[:se])
        assert np.array_equal(values[2 * se :], baseline[2 * se :])
        assert salvage.bound is not None and salvage.bound.ok

    def test_destroyed_shard_header_loses_only_that_shard(self):
        data, stream = self._container()
        table = read_shard_container(stream)
        se = table.shard_elements
        lo, _ = table.spans[2]
        buf = bytearray(stream)
        buf[lo : lo + 16] = b"\x00" * 16  # obliterate the shard header
        values, report = salvage_decompress(bytes(buf), original=data)
        assert 2 in report.shards_lost
        baseline = CereSZ().decompress(stream)
        assert np.array_equal(values[: 2 * se], baseline[: 2 * se])
        assert np.array_equal(values[3 * se :], baseline[3 * se :])

    def test_corrupt_shard_table_raises_strict_parses_tolerant(self):
        _, stream = self._container()
        # The meta CRC sits directly before the first shard payload.
        lo = read_shard_container(stream).spans[0][0]
        bad = _flip(stream, lo - 2)
        with pytest.raises(ContainerError, match="meta CRC"):
            read_shard_table(bad)
        table = read_shard_container(bad)  # tolerant view still parses
        assert not table.meta_ok


class TestFillRegions:
    """SalvageReport.fill_regions: which fill each lost region received.

    The contract under ``fill="previous"``: a corrupt *leading* group has
    no intact predecessor, so it falls back to zero fill (per shard —
    CSZX shards are independent streams), and the report records the
    effective fill of every contiguous lost region.
    """

    def _corrupt_group(self, stream: bytes, group: int) -> bytes:
        _, layout = _layout(stream)
        return _flip(stream, int(layout.group_offsets[group]) + 3)

    def test_leading_group_zero_filled_under_previous(self):
        codec = CereSZ()
        data = _field()
        res = codec.compress(data, eps=EPS, checksum=True, crc_group=4)
        bad = self._corrupt_group(res.stream, 0)
        values, report = salvage_decompress(bad, fill="previous")
        assert report.fill == "previous"
        regions = [r for r in report.fill_regions]
        assert regions and regions[0][0] == 0
        start, stop, effective = regions[0]
        assert effective == "zero"
        L = codec.block_size
        assert not values.reshape(-1)[: stop * L].any()
        assert any("no intact predecessor" in n for n in report.notes)

    def test_middle_group_records_previous(self):
        codec = CereSZ()
        data = _field()
        res = codec.compress(data, eps=EPS, checksum=True, crc_group=4)
        baseline = codec.decompress(res.stream).reshape(-1)
        bad = self._corrupt_group(res.stream, 2)
        values, report = salvage_decompress(bad, fill="previous")
        (start, stop, effective) = report.fill_regions[0]
        assert effective == "previous"
        L = codec.block_size
        assert np.all(
            values.reshape(-1)[start * L : stop * L] == baseline[start * L - 1]
        )

    def test_zero_fill_mode_records_zero(self):
        res = CereSZ().compress(_field(), eps=EPS, checksum=True, crc_group=4)
        bad = self._corrupt_group(res.stream, 2)
        _, report = salvage_decompress(bad, fill="zero")
        assert report.fill_regions
        assert all(eff == "zero" for _, _, eff in report.fill_regions)

    def test_regions_cover_exactly_the_lost_blocks(self):
        res = CereSZ().compress(_field(), eps=EPS, checksum=True, crc_group=4)
        bad = self._corrupt_group(res.stream, 1)
        _, report = salvage_decompress(bad, fill="previous")
        covered = [
            b for start, stop, _ in report.fill_regions
            for b in range(start, stop)
        ]
        assert covered == list(report.lost_block_indices)

    def test_sharded_leading_group_is_shard_local(self):
        """Shard 2's leading group has no predecessor *within its own
        stream*: zero-filled even though shard 1 decoded fine."""
        data = _field(8192, seed=9)
        res = compress_sharded(
            data, eps=EPS, jobs=2, shard_elements=2048, checksum=True,
            crc_group=4,
        )
        table = read_shard_container(res.stream)
        lo, hi = table.spans[2]
        shard = res.stream[lo:hi]
        _, layout = _layout(shard)
        bad = (
            res.stream[:lo]
            + _flip(shard, int(layout.group_offsets[0]) + 3)
            + res.stream[hi:]
        )
        values, report = salvage_decompress(bad, fill="previous")
        assert report.fill_regions
        L = CereSZ().block_size
        shard_base_block = 2 * 2048 // L
        start, stop, effective = report.fill_regions[0]
        assert start == shard_base_block
        assert effective == "zero"
        assert not values[start * L : stop * L].any()

    def test_unrecoverable_shard_is_one_zero_region(self):
        data = _field(8192, seed=9)
        res = compress_sharded(
            data, eps=EPS, jobs=2, shard_elements=2048, checksum=True,
        )
        table = read_shard_container(res.stream)
        lo, _ = table.spans[1]
        buf = bytearray(res.stream)
        buf[lo : lo + 16] = b"\x00" * 16
        _, report = salvage_decompress(bytes(buf), fill="previous")
        L = CereSZ().block_size
        bpshard = 2048 // L
        assert (bpshard, 2 * bpshard, "zero") in report.fill_regions

    def test_report_round_trips_regions(self):
        res = CereSZ().compress(_field(), eps=EPS, checksum=True, crc_group=4)
        bad = self._corrupt_group(res.stream, 0)
        _, report = salvage_decompress(bad, fill="previous")
        import json

        payload = json.loads(report.to_json())
        assert payload["fill_regions"]
        assert "fill regions" in report.describe()
