"""Self-healing wafer runs: plan repair, spare-row remapping, host fallback.

The contract under test: a seeded fault plan that stalls (or corrupts) a
run is recovered by the bounded retry loop — onto spare rows when any
exist, onto a shrunk-and-rebalanced replan when none do, or through the
degraded-mode host fast path when wafer repair is impossible — and the
recovered stream is byte-identical to a fault-free run. The
:class:`RepairReport` derives only from the fault plan and the mapping
plans, so it is invariant under row-parallel partitioning (jobs=1 == jobs=N).
"""

import json

import numpy as np
import pytest

from repro.core.blocks import partition_blocks
from repro.core.plan import expand_mesh, plan_row_parallel
from repro.core.simulate import simulate_plan, simulate_with_repair
from repro.core.wse_compressor import WSECereSZ
from repro.errors import RepairError, ScheduleError
from repro.faults import (
    FaultPlan,
    LinkDown,
    PEHalt,
    RepairReport,
    SramBitFlip,
    WaveletDrop,
    WaveletDup,
    classify_faults,
    drop_rows,
    remap_rows,
    row_blocks,
    spare_rows,
    used_rows,
)

EPS = 0.01


def _field(n: int = 512, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=n).cumsum().astype(np.float32)


def _reference_stream() -> bytes:
    return WSECereSZ(4, 4, strategy="rows").compress(_field(), eps=EPS).stream


def _healing_codec(faults, **kw):
    kw.setdefault("on_fault", "repair")
    return WSECereSZ(4, 4, strategy="rows", faults=faults, **kw)


REFERENCE = _reference_stream()

# One fault of every kind, aimed at a PE the rows strategy uses (col 0
# carries the per-row ComputeNodes). The N/S link fault is the tolerated
# case: row-partitionable plans never route across rows.
FAULT_CASES = {
    "halt": PEHalt(row=2, col=0, at_cycle=5),
    "drop": WaveletDrop(row=2, col=0, color_id=0, nth=1),
    "dup": WaveletDup(row=2, col=0, color_id=0, nth=1),
    "flip": SramBitFlip(row=2, col=0, buffer="inbox", bit=62, at_cycle=50),
    "link": LinkDown(row=2, col=0, direction="W"),
}


class TestRepairEveryKind:
    @pytest.mark.parametrize("kind", sorted(FAULT_CASES))
    def test_repaired_stream_is_byte_identical(self, kind):
        plan = FaultPlan(seed=1, faults=(FAULT_CASES[kind],))
        codec = _healing_codec(plan, spare_rows=1)
        result = codec.compress(_field(), eps=EPS)
        assert result.stream == REFERENCE
        assert result.repair is not None
        assert result.repair.outcome in ("clean", "repaired")
        # Byte-identity was verified against the fault-free reference.
        assert result.repair.verified is True

    def test_halt_consumes_a_spare_row(self):
        plan = FaultPlan(seed=1, faults=(PEHalt(row=2, col=0, at_cycle=5),))
        result = _healing_codec(plan, spare_rows=1).compress(_field(), eps=EPS)
        rep = result.repair
        assert rep.outcome == "repaired"
        assert rep.attempts == 1
        assert rep.unusable_rows == (2,)
        assert rep.spare_rows_used == (4,)
        assert [r.action for r in rep.repairs] == ["remap"]
        assert rep.repairs[0].target_row == 4
        assert "halt PE(2,0)" in rep.repairs[0].reason

    def test_north_south_link_is_tolerated_in_place(self):
        plan = FaultPlan(
            seed=1, faults=(LinkDown(row=2, col=0, direction="N"),)
        )
        result = _healing_codec(plan, spare_rows=1).compress(_field(), eps=EPS)
        assert result.stream == REFERENCE
        assert result.repair.outcome == "clean"
        assert len(result.repair.tolerated) == 1
        assert "link into PE(2,0)" in result.repair.tolerated[0]


class TestShrinkRepair:
    def test_no_spares_shrinks_and_rebalances(self):
        # No spare rows: the replan callback rebuilds the placement over
        # the three surviving rows and the stream is still byte-identical.
        plan = FaultPlan(seed=1, faults=(PEHalt(row=1, col=0, at_cycle=5),))
        result = _healing_codec(plan).compress(_field(), eps=EPS)
        rep = result.repair
        assert result.stream == REFERENCE
        assert rep.outcome == "repaired"
        assert rep.spare_rows_used == ()
        assert {r.action for r in rep.repairs} == {"shrink"}


class TestHostFallback:
    def test_fallback_mode_routes_blocks_to_host(self):
        plan = FaultPlan(seed=1, faults=(PEHalt(row=1, col=0, at_cycle=5),))
        result = _healing_codec(plan, on_fault="fallback").compress(
            _field(), eps=EPS
        )
        rep = result.repair
        assert result.stream == REFERENCE
        assert rep.outcome == "fallback"
        assert {r.action for r in rep.repairs} == {"fallback"}
        # Row 1 of a 4-row mesh owns every 4th of the 16 blocks.
        assert rep.fallback_blocks == (1, 5, 9, 13)

    def test_exhausted_repairs_degrade_to_host(self):
        # max_repairs=0 forbids wafer-side repair entirely; the host
        # fallback still completes the run byte-identically.
        plan = FaultPlan(seed=1, faults=(PEHalt(row=1, col=0, at_cycle=5),))
        result = _healing_codec(plan, max_repairs=0, spare_rows=1).compress(
            _field(), eps=EPS
        )
        assert result.stream == REFERENCE
        assert result.repair.outcome == "fallback"

    def test_every_row_condemned_goes_fully_host(self):
        plan = FaultPlan(
            seed=1,
            faults=tuple(
                PEHalt(row=r, col=0, at_cycle=5) for r in range(4)
            ),
        )
        result = _healing_codec(plan, on_fault="fallback").compress(
            _field(), eps=EPS
        )
        rep = result.repair
        assert result.stream == REFERENCE
        assert rep.outcome == "fallback"
        assert rep.unusable_rows == (0, 1, 2, 3)
        assert rep.fallback_blocks == tuple(range(16))


class TestExhaustion:
    def test_repair_error_when_no_fallback_possible(self):
        # simulate_with_repair with neither spares, replan, nor a host
        # fallback has no avenue left: structured RepairError carrying
        # both reports.
        raw, _ = partition_blocks(
            _field().astype(np.float64), 32
        )
        plan = plan_row_parallel(raw, EPS, rows=4, cols=4)
        faults = FaultPlan(
            seed=1, faults=(PEHalt(row=1, col=0, at_cycle=5),)
        )
        with pytest.raises(RepairError) as exc_info:
            simulate_with_repair(plan, faults=faults, on_fault="repair")
        err = exc_info.value
        assert err.fault_report is not None
        assert isinstance(err.repair_report, RepairReport)
        assert err.repair_report.outcome == "exhausted"
        assert 1 in err.repair_report.unusable_rows

    def test_decompress_direction_never_host_falls_back(self):
        # The host fallback produces compressed records; a decompress
        # plan cannot use it and must exhaust instead.
        codec = WSECereSZ(4, 4, strategy="rows")
        stream = codec.compress(_field(), eps=EPS).stream
        faults = FaultPlan(
            seed=1, faults=(PEHalt(row=1, col=0, at_cycle=5),)
        )
        healing = WSECereSZ(
            4, 4, strategy="rows", faults=faults, on_fault="fallback"
        )
        with pytest.raises(RepairError):
            healing.decompress_on_wafer(stream)


class TestVerifyDetection:
    def test_verify_rejection_triggers_repair(self):
        # Silent corruption (the SRAM-flip failure mode) completes the
        # run but fails byte verification; the loop must classify, remap,
        # and re-verify. Modeled with a verify that rejects the first
        # completed run.
        raw, _ = partition_blocks(_field().astype(np.float64), 32)
        plan = expand_mesh(plan_row_parallel(raw, EPS, rows=4, cols=4), 1)
        faults = FaultPlan(
            seed=1,
            faults=(
                SramBitFlip(row=2, col=0, buffer="inbox", bit=3, at_cycle=9),
            ),
        )
        seen = []

        def verify(run) -> bool:
            seen.append(len(run.outputs.records))
            return len(seen) > 1

        run = simulate_with_repair(
            plan, faults=faults, on_fault="repair", verify=verify
        )
        assert run.repair.outcome == "repaired"
        assert run.repair.verified is True
        assert [r.action for r in run.repair.repairs] == ["remap"]
        assert run.repair.repairs[0].row == 2
        assert len(seen) == 2


class TestPartitionInvariance:
    @pytest.mark.parametrize("kind", ("halt", "drop"))
    def test_repair_report_identical_for_any_jobs(self, kind):
        plan = FaultPlan(seed=1, faults=(FAULT_CASES[kind],))
        r1 = _healing_codec(plan, spare_rows=1, jobs=1).compress(
            _field(), eps=EPS
        )
        r4 = _healing_codec(plan, spare_rows=1, jobs=4).compress(
            _field(), eps=EPS
        )
        assert r1.repair == r4.repair
        assert r1.stream == r4.stream == REFERENCE


class TestRepairReportShape:
    def test_report_round_trips_json(self):
        plan = FaultPlan(seed=1, faults=(PEHalt(row=2, col=0, at_cycle=5),))
        result = _healing_codec(plan, spare_rows=1).compress(_field(), eps=EPS)
        payload = json.loads(result.repair.to_json())
        assert payload["outcome"] == "repaired"
        assert payload["unusable_rows"] == [2]
        assert payload["repairs"][0]["action"] == "remap"
        assert payload["seed"] == 1

    def test_report_pickles(self):
        import pickle

        plan = FaultPlan(seed=1, faults=(PEHalt(row=2, col=0, at_cycle=5),))
        result = _healing_codec(plan, spare_rows=1).compress(_field(), eps=EPS)
        assert pickle.loads(pickle.dumps(result.repair)) == result.repair

    def test_describe_mentions_each_action(self):
        plan = FaultPlan(seed=1, faults=(PEHalt(row=2, col=0, at_cycle=5),))
        result = _healing_codec(plan, spare_rows=1).compress(_field(), eps=EPS)
        text = result.repair.describe()
        assert "repaired after 1" in text
        assert "remapped to spare row 4" in text
        assert "byte-identical" in text


class TestRepairMetricsAndLedger:
    def test_metrics_publish_repair_counters(self):
        plan = FaultPlan(seed=1, faults=(PEHalt(row=1, col=0, at_cycle=5),))
        codec = _healing_codec(
            plan, on_fault="fallback", collect_metrics=True
        )
        codec.compress(_field(), eps=EPS)
        fallback = codec.last_metrics.get("faults.fallback_blocks")
        repaired = codec.last_metrics.get("faults.repaired")
        assert fallback is not None and fallback.total() == 4
        assert repaired is not None and repaired.total() == 0

    def test_ledger_records_each_repair_attempt(self, tmp_path):
        from repro.obs.ledger import Ledger

        path = tmp_path / "ledger.jsonl"
        plan = FaultPlan(seed=1, faults=(PEHalt(row=2, col=0, at_cycle=5),))
        codec = _healing_codec(plan, spare_rows=1, ledger=path)
        codec.compress(_field(), eps=EPS)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        names = [r["name"] for r in records]
        assert "sim.repair" in names
        repair_rec = records[names.index("sim.repair")]
        assert repair_rec["config"]["action"] == "remap"
        assert repair_rec["config"]["bad_rows"] == [2]
        final = records[-1]
        assert final["name"] == "wse.compress"
        assert final["config"]["repair_outcome"] == "repaired"


class TestPlanRewriteHelpers:
    def _plan(self, rows=4, spare=0):
        raw, _ = partition_blocks(_field().astype(np.float64), 32)
        return expand_mesh(
            plan_row_parallel(raw, EPS, rows=rows, cols=4), spare
        )

    def test_spare_and_used_rows(self):
        plan = self._plan(rows=4, spare=2)
        assert used_rows(plan) == (0, 1, 2, 3)
        assert spare_rows(plan) == (4, 5)

    def test_expand_mesh_zero_is_identity(self):
        plan = self._plan()
        assert expand_mesh(plan, 0) is plan
        with pytest.raises(ScheduleError):
            expand_mesh(plan, -1)

    def test_remap_preserves_stream_bytes(self):
        plan = self._plan(rows=4, spare=1)
        moved = remap_rows(plan, {1: 4})
        assert 1 not in used_rows(moved)
        assert 4 in used_rows(moved)
        a = simulate_plan(plan).outputs.stream(plan.num_blocks)
        b = simulate_plan(moved).outputs.stream(plan.num_blocks)
        assert a == b

    def test_remap_rejects_colliding_targets(self):
        plan = self._plan(rows=4, spare=2)
        with pytest.raises(ScheduleError, match="colliding"):
            remap_rows(plan, {0: 4, 1: 4})

    def test_remap_rejects_occupied_targets(self):
        plan = self._plan(rows=4, spare=0)
        with pytest.raises(ScheduleError, match="occupied"):
            remap_rows(plan, {0: 1})

    def test_remap_rejects_out_of_mesh_targets(self):
        plan = self._plan(rows=4, spare=0)
        with pytest.raises(ScheduleError, match="outside"):
            remap_rows(plan, {0: 9})

    def test_drop_rows_is_partial_and_disjoint(self):
        plan = self._plan()
        partial = drop_rows(plan, {1, 3})
        assert partial.partial is True
        assert set(used_rows(partial)) == {0, 2}
        dropped = row_blocks(plan, {1, 3})
        kept = simulate_plan(partial).outputs.records
        assert set(kept).isdisjoint(dropped)
        assert set(kept) | set(dropped) == set(range(plan.num_blocks))

    def test_classification_is_pure_and_canonical(self):
        plan = self._plan(rows=4, spare=1)
        faults = FaultPlan(
            seed=3,
            faults=(
                PEHalt(row=1, col=0, at_cycle=5),
                PEHalt(row=4, col=0, at_cycle=5),  # spare row: idle
                LinkDown(row=2, col=0, direction="N"),  # uncrossed
                WaveletDrop(row=3, col=0, color_id=0, nth=1),  # node site
            ),
        )
        cls = classify_faults(faults, plan)
        assert cls.unusable_rows == (1, 3)
        assert len(cls.harmful) == 2
        assert len(cls.tolerated) == 2
        assert classify_faults(faults, plan) == cls
        assert cls.row_reason(1) == "halt PE(1,0) at cycle 5"
