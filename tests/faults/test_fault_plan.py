"""Fault plans: seeded determinism, row partitioning, and the CLI grammar."""

import pytest

from repro.errors import ReproError
from repro.faults.plan import (
    FaultPlan,
    LinkDown,
    PEHalt,
    SramBitFlip,
    WaveletDrop,
    WaveletDup,
    parse_fault_spec,
)


class TestRandomPlans:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(42, 4, 6, n_halts=2, n_drops=3, n_flips=1)
        b = FaultPlan.random(42, 4, 6, n_halts=2, n_drops=3, n_flips=1)
        assert a == b

    def test_different_seed_different_plan(self):
        a = FaultPlan.random(1, 8, 8, n_halts=3, n_drops=3)
        b = FaultPlan.random(2, 8, 8, n_halts=3, n_drops=3)
        assert a != b

    def test_faults_land_inside_mesh(self):
        plan = FaultPlan.random(9, 3, 5, n_halts=5, n_drops=5, n_flips=5)
        for f in plan.faults:
            assert 0 <= f.row < 3
            assert 0 <= f.col < 5


class TestRowPartitioning:
    def test_for_rows_filters_without_renumbering(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                PEHalt(row=0, col=1, at_cycle=10),
                PEHalt(row=2, col=0, at_cycle=20),
                WaveletDrop(row=2, col=3, color_id=4, nth=1),
            ),
        )
        sub = plan.for_rows([2])
        assert sub.seed == 7
        assert all(f.row == 2 for f in sub.faults)
        assert len(sub.faults) == 2

    def test_partition_union_covers_plan(self):
        plan = FaultPlan.random(13, 6, 4, n_halts=4, n_drops=4, n_flips=2)
        parts = [plan.for_rows([r, r + 1]) for r in (0, 2, 4)]
        merged = set()
        for p in parts:
            assert merged.isdisjoint(p.faults)
            merged |= set(p.faults)
        assert merged == set(plan.faults)


class TestSpecGrammar:
    def test_full_grammar(self):
        plan = parse_fault_spec(
            "seed:9; halt:1,2@400; drop:0,3,5#2; dup:2,2,1#1; "
            "flip:1,1,raw,17@250; link:0,0,W"
        )
        assert plan.seed == 9
        kinds = [f.kind for f in plan.faults]
        assert kinds == ["halt", "drop", "dup", "flip", "link"]
        halt = plan.faults[0]
        assert isinstance(halt, PEHalt)
        assert (halt.row, halt.col, halt.at_cycle) == (1, 2, 400)
        drop = plan.faults[1]
        assert isinstance(drop, WaveletDrop)
        assert (drop.color_id, drop.nth) == (5, 2)
        assert isinstance(plan.faults[2], WaveletDup)
        flip = plan.faults[3]
        assert isinstance(flip, SramBitFlip)
        assert (flip.buffer, flip.bit, flip.at_cycle) == ("raw", 17, 250)
        link = plan.faults[4]
        assert isinstance(link, LinkDown)
        assert link.direction == "W"

    def test_drop_nth_defaults_to_one(self):
        plan = parse_fault_spec("drop:0,0,3")
        assert plan.faults[0].nth == 1

    def test_bad_segment_raises_structured(self):
        with pytest.raises(ReproError, match="bad fault spec"):
            parse_fault_spec("halt:1@10")  # missing column
        with pytest.raises(ReproError, match="bad fault spec"):
            parse_fault_spec("explode:1,1")

    def test_describe_names_every_fault(self):
        plan = parse_fault_spec("seed:3;halt:1,2@400;link:0,0,N")
        text = plan.describe()
        assert "seed=3" in text
        assert "halt PE(1,2) at cycle 400" in text
        assert "link into PE(0,0)" in text


class TestMeshValidation:
    def test_validate_mesh_accepts_in_bounds(self):
        plan = FaultPlan(seed=0, faults=(PEHalt(row=3, col=3, at_cycle=5),))
        assert plan.validate_mesh(4, 4) is plan

    def test_validate_mesh_names_offending_fault(self):
        plan = FaultPlan(
            seed=0,
            faults=(
                PEHalt(row=0, col=0, at_cycle=5),
                WaveletDrop(row=2, col=9, color_id=1, nth=1),
            ),
        )
        with pytest.raises(ReproError) as exc_info:
            plan.validate_mesh(4, 4)
        msg = str(exc_info.value)
        assert "PE(2,9)" in msg
        assert "4x4 mesh" in msg
        assert "drop delivery #1" in msg

    def test_validate_mesh_rejects_bad_link_direction(self):
        plan = FaultPlan(
            seed=0, faults=(LinkDown(row=0, col=0, direction="Q"),)
        )
        with pytest.raises(ReproError, match="link direction"):
            plan.validate_mesh(4, 4)

    def test_parse_with_mesh_validates_coordinates(self):
        with pytest.raises(ReproError, match=r"PE\(9,0\).*4x4"):
            parse_fault_spec("halt:9,0@10", mesh=(4, 4))

    def test_parse_without_mesh_skips_validation(self):
        plan = parse_fault_spec("halt:9,0@10")
        assert plan.faults[0].row == 9


class TestRandomSpecWithMesh:
    def test_random_seed_count_grammar(self):
        plan = parse_fault_spec("random:7,4", mesh=(6, 4))
        assert plan.seed == 7
        assert len(plan.faults) == 4
        kinds = sorted(f.kind for f in plan.faults)
        assert kinds == ["drop", "drop", "halt", "halt"]
        for f in plan.faults:
            assert 0 <= f.row < 6 and 0 <= f.col < 4

    def test_random_is_deterministic(self):
        a = parse_fault_spec("random:3,5", mesh=(4, 4))
        b = parse_fault_spec("random:3,5", mesh=(4, 4))
        assert a == b

    def test_explicit_seed_wins_over_random_seed(self):
        plan = parse_fault_spec("seed:11;random:3,2", mesh=(4, 4))
        assert plan.seed == 11

    def test_legacy_random_form_needs_no_mesh(self):
        plan = parse_fault_spec("seed:3;random:4,4,halts=1,drops=2")
        assert plan.seed == 3
        assert len(plan.faults) == 3

    def test_bad_random_segment_with_mesh(self):
        with pytest.raises(ReproError, match="bad fault spec segment"):
            parse_fault_spec("random:4,4,halts=1", mesh=(4, 4))
        with pytest.raises(ReproError, match="bad fault spec segment"):
            parse_fault_spec("random:7,-1", mesh=(4, 4))
