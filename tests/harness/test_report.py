"""Tests for the plain-text rendering helpers."""

from repro.harness.report import ascii_bar_chart, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["a", "long_header"], [[1, 2], [333, 4]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to equal width

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159], [1e-9], [123456.0]])
        assert "3.14" in text
        assert "1e-09" in text
        assert "1.23e+05" in text

    def test_zero_renders_bare(self):
        assert "0" in format_table(["x"], [[0.0]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestAsciiBarChart:
    def test_bars_scale_to_peak(self):
        text = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title_and_units(self):
        text = ascii_bar_chart(
            ["x"], [3.0], unit=" GB/s", title="Chart"
        )
        assert text.startswith("Chart")
        assert "3.00 GB/s" in text

    def test_zero_values(self):
        text = ascii_bar_chart(["a"], [0.0])
        assert "#" not in text

    def test_empty(self):
        assert ascii_bar_chart([], [], title="t") == "t"
