"""Tests for the figure-regeneration harness (paper Figs 7, 10-15)."""

import numpy as np
import pytest

from repro.harness.figures import (
    fig7_row_scaling,
    fig10_relay_and_execution,
    fig11_compression_throughput,
    fig12_decompression_throughput,
    fig13_pipeline_lengths,
    fig14_wse_sizes,
    fig15_quality,
)
from repro.wse.cost import PAPER_CYCLE_MODEL


class TestFig7:
    @pytest.fixture(scope="class")
    def points(self):
        return fig7_row_scaling(rows_list=(64, 128, 256, 512))

    def test_linear_speedup(self, points):
        per_row = [p.throughput_mbs / p.rows for p in points]
        assert max(per_row) / min(per_row) == pytest.approx(1.0, rel=1e-9)

    def test_doubling_rows_doubles_throughput(self, points):
        assert points[1].throughput_mbs == pytest.approx(
            2 * points[0].throughput_mbs
        )


class TestFig10:
    @pytest.fixture(scope="class")
    def profile(self):
        return fig10_relay_and_execution(sim_cols=(2, 4, 8))

    def test_analytic_line_is_eq2(self, profile):
        c1 = PAPER_CYCLE_MODEL.c1_relay
        for tc, cycles in zip(profile.cols_swept, profile.relay_cycles_analytic):
            assert cycles == pytest.approx(tc * c1)

    def test_simulated_relay_is_linear(self, profile):
        """The head PE relays TC-1 blocks per round at cost C1 each."""
        c1 = PAPER_CYCLE_MODEL.c1_relay
        for tc, cycles in zip(
            profile.cols_swept, profile.relay_cycles_simulated
        ):
            assert cycles == pytest.approx((tc - 1) * c1, rel=0.05)

    def test_execution_time_falls_initially(self, profile):
        ex = profile.execution_cycles_per_pe
        assert ex[1] < ex[0]

    def test_execution_curve_has_c_over_pl_shape(self, profile):
        """Fig 10b: inversely proportional to the pipeline length."""
        ex = profile.execution_cycles_per_pe
        pls = profile.pipeline_lengths
        c2 = PAPER_CYCLE_MODEL.c2_forward
        # Removing the forwarding term must leave ~C/pl.
        base = [(e - (pl - 1) * c2) * pl for e, pl in zip(ex, pls)]
        assert max(base) / min(base) == pytest.approx(1.0, rel=1e-6)


class TestFigs11And12:
    @pytest.fixture(scope="class")
    def comp(self):
        return fig11_compression_throughput(
            datasets=("QMCPack", "HACC"), rel_bounds=(1e-2, 1e-4)
        )

    @pytest.fixture(scope="class")
    def decomp(self):
        return fig12_decompression_throughput(
            datasets=("QMCPack", "HACC"), rel_bounds=(1e-2, 1e-4)
        )

    def test_matrix_complete(self, comp):
        assert len(comp) == 5 * 2 * 2  # compressors x datasets x bounds

    def test_ceresz_fastest_everywhere(self, comp):
        groups = {}
        for bar in comp:
            groups.setdefault((bar.dataset, bar.rel), {})[
                bar.compressor
            ] = bar.throughput_gbs
        for key, rates in groups.items():
            assert rates["CereSZ"] == max(rates.values()), key

    def test_speedup_over_cuszp_in_paper_band(self, comp):
        """Headline claim: 2.43x-10.98x faster than cuSZp."""
        groups = {}
        for bar in comp:
            groups.setdefault((bar.dataset, bar.rel), {})[
                bar.compressor
            ] = bar.throughput_gbs
        for key, rates in groups.items():
            speedup = rates["CereSZ"] / rates["cuSZp"]
            assert 2.0 <= speedup <= 12.0, (key, speedup)

    def test_sz_slowest(self, comp):
        for bar in comp:
            if bar.compressor == "SZ":
                assert bar.throughput_gbs < 1.0

    def test_decompression_faster_for_ceresz(self, comp, decomp):
        c = {
            (b.dataset, b.rel): b.throughput_gbs
            for b in comp
            if b.compressor == "CereSZ"
        }
        d = {
            (b.dataset, b.rel): b.throughput_gbs
            for b in decomp
            if b.compressor == "CereSZ"
        }
        for key in c:
            assert d[key] > c[key]

    def test_tighter_bound_slower_for_ceresz(self, comp):
        c = {
            (b.dataset, b.rel): b.throughput_gbs
            for b in comp
            if b.compressor == "CereSZ"
        }
        for dataset in ("QMCPack", "HACC"):
            assert c[(dataset, 1e-2)] > c[(dataset, 1e-4)]


class TestFig13:
    @pytest.fixture(scope="class")
    def points(self):
        return fig13_pipeline_lengths(datasets=("QMCPack",))

    def test_one_pe_pipeline_wins(self, points):
        by_pl = {p.pipeline_length: p.throughput_gbs for p in points}
        assert by_pl[1] == max(by_pl.values())

    def test_monotone_decrease(self, points):
        rates = [p.throughput_gbs for p in points]
        assert all(a >= b for a, b in zip(rates, rates[1:]))


class TestFig14:
    @pytest.fixture(scope="class")
    def points(self):
        return fig14_wse_sizes(datasets=("HACC",), sizes=(16, 32, 64))

    def test_monotone_in_mesh_size(self, points):
        rates = [p.throughput_gbs for p in points]
        assert rates == sorted(rates)

    def test_quadrupling_pes_about_quadruples_throughput(self, points):
        assert points[1].throughput_gbs / points[0].throughput_gbs == (
            pytest.approx(4.0, rel=0.15)
        )


class TestFig15:
    @pytest.fixture(scope="class")
    def report(self):
        return fig15_quality()

    def test_reconstructions_identical(self, report):
        """Paper Obs 3: CereSZ and cuSZp share the reconstruction."""
        assert report.reconstructions_identical
        assert report.ceresz_psnr == pytest.approx(report.cuszp_psnr)
        assert report.ceresz_ssim == pytest.approx(report.cuszp_ssim)

    def test_psnr_matches_paper_value(self, report):
        """84.77 dB at REL 1e-4 is analytic for uniform quantization."""
        assert report.ceresz_psnr == pytest.approx(84.77, abs=0.35)

    def test_ssim_near_one(self, report):
        assert report.ceresz_ssim > 0.999

    def test_cuszp_ratio_slightly_higher(self, report):
        """The 4-byte headers cost CereSZ a little ratio (3.10 vs 3.35)."""
        assert report.cuszp_ratio > report.ceresz_ratio
        assert report.cuszp_ratio / report.ceresz_ratio < 1.25
