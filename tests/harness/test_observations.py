"""Tests for the paper's three Observations (the boxed claims)."""

import pytest

from repro.harness.observations import (
    all_observations,
    observation2_ratio,
    observation3_quality,
)


class TestObservations:
    def test_observation2_holds(self):
        v = observation2_ratio()
        assert v.holds, v.evidence
        assert v.evidence["SZp"] == pytest.approx(v.evidence["cuSZp"])

    def test_observation3_holds(self):
        v = observation3_quality()
        assert v.holds, v.evidence
        assert v.evidence["reconstructions_identical"]
        assert v.evidence["ratio_cuszp"] > v.evidence["ratio_ceresz"]

    @pytest.mark.slow
    def test_all_observations_hold(self):
        verdicts = all_observations()
        assert [v.observation for v in verdicts] == [1, 2, 3]
        for v in verdicts:
            assert v.holds, (v.observation, v.evidence)
        # Observation 1's headline numbers in the paper's territory.
        ev = verdicts[0].evidence
        assert ev["decompress_avg_gbs"] > ev["compress_avg_gbs"]
