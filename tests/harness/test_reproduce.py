"""Tests for the one-command reproduction runbook."""

import pytest

from repro.harness.reproduce import reproduce_all


@pytest.fixture(scope="module")
def summary(tmp_path_factory):
    out = tmp_path_factory.mktemp("repro")
    return reproduce_all(out, quick=True)


class TestReproduceAll:
    def test_every_artifact_written(self, summary):
        expected = {
            "table1.txt", "table2.txt", "table3.txt", "table4.txt",
            "table5.txt", "fig7.txt", "fig10.txt", "fig11.txt",
            "fig12.txt", "fig13.txt", "fig14.txt", "fig15.txt",
            "calibration.txt", "model_validation.txt", "observations.txt",
            "REPORT.md",
        }
        assert set(summary.artifacts) == expected
        for name in expected:
            path = summary.out_dir / name
            assert path.exists() and path.stat().st_size > 0, name

    def test_headline_sane(self, summary):
        h = summary.headline
        assert h["observations_hold"]
        assert 200 <= h["compress_avg_gbs"] <= 1100
        assert h["decompress_avg_gbs"] > h["compress_avg_gbs"]
        assert h["fig15_psnr_db"] == pytest.approx(84.77, abs=0.1)
        assert h["worst_model_gap"] < 0.15

    def test_report_is_markdown_with_paper_columns(self, summary):
        text = (summary.out_dir / "REPORT.md").read_text()
        assert "| headline | paper | this run |" in text
        assert "457.35" in text  # paper compression average for comparison

    def test_observations_artifact_reports_holds(self, summary):
        text = (summary.out_dir / "observations.txt").read_text()
        assert text.count("HOLDS") == 3
        assert "FAILS" not in text
