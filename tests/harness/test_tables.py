"""Tests for the table-regeneration harness (paper Tables 1-5)."""

import pytest

from repro.harness.tables import (
    PAPER_TABLE1,
    table1_stage_cycles,
    table2_prequant_breakdown,
    table3_encoding_breakdown,
    table4_datasets,
    table5_compression_ratio,
)


class TestTable1:
    def test_rows_cover_profiled_datasets(self):
        rows = table1_stage_cycles()
        assert [r.dataset for r in rows] == ["CESM-ATM", "HACC", "QMCPack"]

    def test_prequant_within_paper_band(self):
        for row in table1_stage_cycles():
            paper_pq = row.paper[0]
            assert row.prequant == pytest.approx(paper_pq, rel=0.03)

    def test_lorenzo_exact(self):
        for row in table1_stage_cycles():
            assert row.lorenzo == pytest.approx(975)

    def test_encode_dominates(self):
        """Table 1's key observation: encoding is the heavy step."""
        for row in table1_stage_cycles():
            assert row.fl_encode > row.prequant > row.lorenzo


class TestTable2:
    def test_split_sums_to_prequant(self):
        for row in table2_prequant_breakdown():
            assert row.multiplication + row.addition == pytest.approx(
                row.prequant
            )

    def test_multiplication_about_80_percent(self):
        for row in table2_prequant_breakdown():
            assert 0.75 <= row.multiplication / row.prequant <= 0.88

    def test_matches_paper_values(self):
        for row in table2_prequant_breakdown():
            assert row.multiplication == pytest.approx(row.paper[1], rel=0.01)
            assert row.addition == pytest.approx(row.paper[2], rel=0.01)


class TestTable3:
    def test_split_sums_to_encode(self):
        for row in table3_encoding_breakdown():
            total = row.sign + row.max + row.get_length + row.bit_shuffle
            assert total == pytest.approx(row.fl_encode)

    def test_bitshuffle_dominates(self):
        for row in table3_encoding_breakdown():
            assert row.bit_shuffle > 0.8 * row.fl_encode

    def test_fixed_stages_stable_across_datasets(self):
        rows = table3_encoding_breakdown()
        assert len({r.sign for r in rows}) == 1
        assert len({r.max for r in rows}) == 1
        assert len({r.get_length for r in rows}) == 1

    def test_bitshuffle_proportional_to_fl(self):
        """Table 3's observation: ~uniform overhead per effective bit."""
        rows = table3_encoding_breakdown()
        per_bit = {r.bit_shuffle / r.fixed_length for r in rows}
        assert max(per_bit) - min(per_bit) < 1e-6


class TestTable4:
    def test_six_rows(self):
        rows = table4_datasets()
        assert len(rows) == 6

    def test_paper_dims_reported(self):
        rows = {r["dataset"]: r for r in table4_datasets()}
        assert rows["NYX"]["paper_shape"] == "512x512x512"
        assert rows["HACC"]["paper_shape"] == "280953867"


class TestTable5:
    @pytest.fixture(scope="class")
    def rows(self):
        # A narrow slice keeps the test fast; the bench runs the full table.
        return table5_compression_ratio(
            compressors=("CereSZ", "SZp", "SZ"),
            datasets=("RTM", "HACC"),
            rel_bounds=(1e-2, 1e-4),
            field_limit=3,
        )

    def test_matrix_complete(self, rows):
        assert len(rows) == 3 * 2 * 2

    def test_min_avg_max_ordering(self, rows):
        for row in rows:
            assert row.min <= row.avg <= row.max

    def test_sz_dominates(self, rows):
        """Table 5: SZ has the highest average everywhere."""
        by_key = {(r.compressor, r.dataset, r.rel): r for r in rows}
        for dataset in ("RTM", "HACC"):
            for rel in (1e-2, 1e-4):
                assert (
                    by_key[("SZ", dataset, rel)].avg
                    > by_key[("CereSZ", dataset, rel)].avg
                )

    def test_szp_at_least_ceresz(self, rows):
        """The 1-byte headers can only help."""
        by_key = {(r.compressor, r.dataset, r.rel): r for r in rows}
        for dataset in ("RTM", "HACC"):
            for rel in (1e-2, 1e-4):
                assert (
                    by_key[("SZp", dataset, rel)].avg
                    >= by_key[("CereSZ", dataset, rel)].avg * 0.99
                )

    def test_format_caps(self, rows):
        for row in rows:
            if row.compressor == "CereSZ":
                assert row.max <= 32.5
            if row.compressor == "SZp":
                assert row.max <= 128.5

    def test_ratio_falls_with_tighter_bound(self, rows):
        by_key = {(r.compressor, r.dataset, r.rel): r for r in rows}
        for name in ("CereSZ", "SZp", "SZ"):
            for dataset in ("RTM", "HACC"):
                assert (
                    by_key[(name, dataset, 1e-2)].avg
                    > by_key[(name, dataset, 1e-4)].avg
                )
