"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in (
            "CompressionError",
            "FormatError",
            "ErrorBoundError",
            "DatasetError",
            "FabricError",
            "RoutingError",
            "MemoryError_",
            "ColorExhaustedError",
            "DeadlockError",
            "TaskError",
            "ScheduleError",
            "ModelError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_format_errors_are_compression_errors(self):
        """Catching CompressionError must also catch malformed streams."""
        assert issubclass(errors.FormatError, errors.CompressionError)

    def test_fabric_branch(self):
        for name in (
            "RoutingError",
            "MemoryError_",
            "ColorExhaustedError",
            "DeadlockError",
            "TaskError",
        ):
            assert issubclass(getattr(errors, name), errors.FabricError), name

    def test_memory_error_does_not_shadow_builtin(self):
        assert errors.MemoryError_ is not MemoryError
        with pytest.raises(errors.MemoryError_):
            raise errors.MemoryError_("sram")

    def test_single_except_catches_all_library_failures(self):
        import numpy as np

        from repro import CereSZ

        caught = 0
        for bad_call in (
            lambda: CereSZ().compress(np.zeros(0, dtype=np.float32), rel=1e-3),
            lambda: CereSZ().decompress(b"garbage"),
            lambda: CereSZ().compress(np.ones(4, dtype=np.float32)),
        ):
            try:
                bad_call()
            except errors.ReproError:
                caught += 1
        assert caught == 3
