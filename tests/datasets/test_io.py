"""Tests for raw .f32 I/O."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datasets.io import load_f32, save_f32


class TestF32IO:
    def test_round_trip_flat(self, tmp_path):
        data = np.linspace(-1, 1, 100).astype(np.float32)
        path = tmp_path / "field.f32"
        save_f32(path, data)
        assert np.array_equal(load_f32(path), data)

    def test_round_trip_shaped(self, tmp_path):
        data = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        path = tmp_path / "field.f32"
        save_f32(path, data)
        out = load_f32(path, shape=(2, 3, 4))
        assert np.array_equal(out, data)

    def test_file_size_is_headerless(self, tmp_path):
        path = tmp_path / "field.f32"
        save_f32(path, np.zeros(10, dtype=np.float32))
        assert path.stat().st_size == 40

    def test_shape_mismatch_raises(self, tmp_path):
        path = tmp_path / "field.f32"
        save_f32(path, np.zeros(10, dtype=np.float32))
        with pytest.raises(DatasetError, match="needs"):
            load_f32(path, shape=(3, 4))

    def test_float64_input_downcast(self, tmp_path):
        path = tmp_path / "field.f32"
        save_f32(path, np.array([1.5, 2.5]))
        out = load_f32(path)
        assert out.dtype == np.dtype("<f4")
        assert out.tolist() == [1.5, 2.5]
