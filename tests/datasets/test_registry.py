"""Tests for the dataset registry (paper Table 4)."""

import pytest

from repro.errors import DatasetError
from repro.datasets.registry import (
    DATASETS,
    NYX_FIELDS,
    dataset_names,
    get_dataset,
)


class TestTable4Integrity:
    def test_six_datasets(self):
        assert len(DATASETS) == 6

    def test_paper_field_counts(self):
        counts = {name: info.num_fields for name, info in DATASETS.items()}
        assert counts == {
            "CESM-ATM": 79,
            "Hurricane": 13,
            "QMCPack": 2,
            "NYX": 6,
            "RTM": 36,
            "HACC": 6,
        }

    def test_paper_shapes(self):
        assert DATASETS["CESM-ATM"].paper_shape == (1800, 3600)
        assert DATASETS["NYX"].paper_shape == (512, 512, 512)
        assert DATASETS["HACC"].paper_shape == (280_953_867,)

    def test_domains(self):
        assert DATASETS["RTM"].domain == "Seismic Imaging"
        assert DATASETS["QMCPack"].domain == "Quantum Monte Carlo"

    def test_synthetic_shapes_preserve_dimensionality(self):
        for info in DATASETS.values():
            assert len(info.synthetic_shape) == len(info.paper_shape)

    def test_synthetic_fields_are_block_friendly(self):
        """Fields must hold at least a few hundred 32-element blocks."""
        for info in DATASETS.values():
            assert info.elements_per_field >= 300 * 32

    def test_profiled_fixed_lengths(self):
        """Table 3's encoding lengths: CESM 17, HACC 13, QMCPack 12."""
        assert DATASETS["CESM-ATM"].profiled_fixed_length == 17
        assert DATASETS["HACC"].profiled_fixed_length == 13
        assert DATASETS["QMCPack"].profiled_fixed_length == 12

    def test_bytes_per_field(self):
        info = DATASETS["NYX"]
        assert info.bytes_per_field == info.elements_per_field * 4

    def test_nyx_field_names(self):
        assert "velocity_x" in NYX_FIELDS
        assert len(NYX_FIELDS) == 6


class TestLookup:
    def test_names(self):
        assert set(dataset_names()) == set(DATASETS)

    def test_get(self):
        assert get_dataset("NYX").name == "NYX"

    def test_unknown_raises(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            get_dataset("EXAALT")
