"""Tests for the synthetic field generators."""

import numpy as np
import pytest

from repro import CereSZ
from repro.errors import DatasetError
from repro.datasets import DATASETS, generate_field, iter_fields
from repro.datasets.synthetic import field_name


class TestBasics:
    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    def test_shape_and_dtype(self, dataset):
        field = generate_field(dataset, 0)
        assert field.shape == DATASETS[dataset].synthetic_shape
        assert field.dtype == np.float32

    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    def test_all_finite(self, dataset):
        assert np.all(np.isfinite(generate_field(dataset, 0)))

    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    def test_deterministic(self, dataset):
        a = generate_field(dataset, 1, seed=3)
        b = generate_field(dataset, 1, seed=3)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    def test_seed_changes_data(self, dataset):
        a = generate_field(dataset, 0, seed=0)
        b = generate_field(dataset, 0, seed=1)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    def test_fields_differ(self, dataset):
        a = generate_field(dataset, 0)
        b = generate_field(dataset, 1)
        assert not np.array_equal(a, b)

    def test_out_of_range_field_index(self):
        with pytest.raises(DatasetError, match="out of range"):
            generate_field("QMCPack", 2)

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            generate_field("MADEUP", 0)

    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    def test_nonconstant(self, dataset):
        field = generate_field(dataset, 0)
        assert float(field.max()) > float(field.min())


class TestIterFields:
    def test_limit(self):
        fields = list(iter_fields("CESM-ATM", limit=3))
        assert len(fields) == 3

    def test_limit_capped_at_dataset_size(self):
        fields = list(iter_fields("QMCPack", limit=10))
        assert len(fields) == 2

    def test_names_are_unique(self):
        names = [n for n, _ in iter_fields("RTM", limit=6)]
        assert len(set(names)) == 6

    def test_nyx_uses_real_field_names(self):
        names = [n for n, _ in iter_fields("NYX")]
        assert "velocity_x" in names
        assert "baryon_density" in names

    def test_field_name_helper(self):
        assert field_name("NYX", 3) == "velocity_x"
        assert field_name("HACC", 1) == "hacc_f01"


class TestDatasetCharacter:
    """Each generator must show the statistical traits Table 5 relies on."""

    def test_rtm_early_snapshots_sparser_than_late(self):
        codec = CereSZ()
        early = codec.compress(generate_field("RTM", 0), rel=1e-3)
        late = codec.compress(generate_field("RTM", 35), rel=1e-3)
        assert early.zero_block_fraction > late.zero_block_fraction
        assert early.ratio > late.ratio

    def test_nyx_density_is_positive_and_skewed(self):
        density = generate_field("NYX", 0)  # baryon_density
        assert float(density.min()) > 0
        assert float(np.mean(density)) < float(density.max()) / 20

    def test_nyx_velocity_is_zero_mean(self):
        vx = generate_field("NYX", 3)
        assert abs(float(vx.mean())) < 0.2 * float(vx.std())

    def test_hacc_positions_are_nondecreasing_in_trend(self):
        xx = generate_field("HACC", 0)
        # Cluster-sorted storage: long-range trend is monotone even though
        # local jitter is not.
        coarse = xx[:: len(xx) // 100]
        assert np.all(np.diff(coarse.astype(np.float64)) > -1.0)

    def test_hacc_is_least_compressible(self):
        """HACC sits at the bottom of Table 5's CereSZ column."""
        codec = CereSZ()
        hacc = np.mean(
            [codec.compress(a, rel=1e-3).ratio for _, a in iter_fields("HACC", limit=4)]
        )
        rtm = np.mean(
            [codec.compress(a, rel=1e-3).ratio for _, a in iter_fields("RTM", limit=4)]
        )
        assert hacc < rtm

    def test_qmcpack_orbital_decays_radially(self):
        orb = generate_field("QMCPack", 0)
        center = np.abs(orb[orb.shape[0] // 2 - 2 : orb.shape[0] // 2 + 2]).mean()
        corner = np.abs(orb[:4, :4, :4]).mean()
        assert center > 5 * corner

    def test_ratio_falls_with_tighter_bound_everywhere(self):
        codec = CereSZ()
        for dataset in sorted(DATASETS):
            field = generate_field(dataset, 0)
            r = [codec.compress(field, rel=rel).ratio for rel in (1e-2, 1e-3, 1e-4)]
            assert r[0] > r[1] > r[2], dataset

    def test_ceresz_ratio_within_format_cap(self):
        codec = CereSZ()
        for dataset in sorted(DATASETS):
            ratio = codec.compress(generate_field(dataset, 0), rel=1e-2).ratio
            assert ratio <= 32.5, dataset
