"""Tests for color allocation (24 hardware channels)."""

import pytest

from repro.config import PE_NUM_COLORS
from repro.errors import ColorExhaustedError
from repro.wse.color import Color, ColorAllocator


class TestColor:
    def test_valid_ids(self):
        assert Color(0).id == 0
        assert Color(PE_NUM_COLORS - 1).id == PE_NUM_COLORS - 1

    def test_out_of_range_id_rejected(self):
        with pytest.raises(ColorExhaustedError):
            Color(PE_NUM_COLORS)
        with pytest.raises(ColorExhaustedError):
            Color(-1)

    def test_equality_by_id_and_name(self):
        assert Color(3, "x") == Color(3, "x")
        assert Color(3, "x") != Color(4, "x")


class TestColorAllocator:
    def test_allocates_distinct_ids(self):
        alloc = ColorAllocator()
        ids = {alloc.allocate().id for _ in range(PE_NUM_COLORS)}
        assert len(ids) == PE_NUM_COLORS

    def test_exhaustion_raises(self):
        alloc = ColorAllocator()
        for _ in range(PE_NUM_COLORS):
            alloc.allocate()
        with pytest.raises(ColorExhaustedError):
            alloc.allocate()

    def test_named_lookup(self):
        alloc = ColorAllocator()
        c = alloc.allocate("input")
        assert alloc["input"] is c
        assert "input" in alloc
        assert "output" not in alloc

    def test_duplicate_name_rejected(self):
        alloc = ColorAllocator()
        alloc.allocate("x")
        with pytest.raises(ColorExhaustedError):
            alloc.allocate("x")

    def test_remaining_counts_down(self):
        alloc = ColorAllocator()
        assert alloc.remaining == PE_NUM_COLORS
        alloc.allocate()
        assert alloc.remaining == PE_NUM_COLORS - 1
        assert alloc.allocated == 1
