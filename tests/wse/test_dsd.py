"""Tests for data structure descriptors."""

import numpy as np
import pytest

from repro.errors import TaskError
from repro.wse.color import Color
from repro.wse.dsd import FabinDsd, FaboutDsd, Mem1dDsd


class TestMem1dDsd:
    def test_resolve_full_buffer(self):
        storage = {"buf": np.arange(8)}
        view = Mem1dDsd("buf").resolve(storage)
        assert view.size == 8

    def test_resolve_window(self):
        storage = {"buf": np.arange(10)}
        view = Mem1dDsd("buf", offset=2, length=5).resolve(storage)
        assert view.tolist() == [2, 3, 4, 5, 6]

    def test_resolve_is_a_view_not_a_copy(self):
        storage = {"buf": np.zeros(4)}
        view = Mem1dDsd("buf").resolve(storage)
        view[:] = 7
        assert storage["buf"].tolist() == [7, 7, 7, 7]

    def test_unknown_buffer(self):
        with pytest.raises(TaskError, match="unknown buffer"):
            Mem1dDsd("ghost").resolve({})

    def test_window_past_end(self):
        storage = {"buf": np.arange(4)}
        with pytest.raises(TaskError, match="exceeds"):
            Mem1dDsd("buf", offset=2, length=5).resolve(storage)

    def test_negative_offset_rejected(self):
        with pytest.raises(TaskError):
            Mem1dDsd("buf", offset=-1)

    def test_negative_length_rejected(self):
        with pytest.raises(TaskError):
            Mem1dDsd("buf", length=-2)


class TestFabricDsds:
    def test_fabin_requires_positive_extent(self):
        with pytest.raises(TaskError):
            FabinDsd(Color(0), extent=0)

    def test_fabout_requires_positive_extent(self):
        with pytest.raises(TaskError):
            FaboutDsd(Color(0), extent=-3)

    def test_descriptors_are_hashable_values(self):
        a = FabinDsd(Color(1), extent=4)
        b = FabinDsd(Color(1), extent=4)
        assert a == b
        assert hash(a) == hash(b)
