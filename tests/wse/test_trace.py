"""Tests for trace recording and the paper's timing aggregates."""

import pytest

from repro.wse.pe import ProcessingElement
from repro.wse.trace import TraceRecorder


def make_pe(row=0, col=0, compute=0, relay=0, tasks=0, finished=0.0):
    pe = ProcessingElement(row=row, col=col)
    pe.compute_cycles = compute
    pe.relay_cycles = relay
    pe.tasks_run = tasks
    pe.busy_until = finished
    return pe


class TestTraceRecorder:
    def test_makespan_is_last_pe_to_finish(self):
        rec = TraceRecorder()
        rec.record(make_pe(0, 0, finished=100.0))
        rec.record(make_pe(0, 1, finished=250.0))
        assert rec.makespan_cycles == 250.0

    def test_makespan_seconds_uses_clock(self):
        rec = TraceRecorder()
        rec.record(make_pe(finished=850.0))
        assert rec.makespan_seconds(clock_hz=850.0) == 1.0

    def test_throughput_definition(self):
        """Paper 5.1.4: original bytes / execution time."""
        rec = TraceRecorder()
        rec.record(make_pe(finished=850e6))  # exactly one second at 850 MHz
        assert rec.throughput_bytes_per_s(1024) == pytest.approx(1024)

    def test_throughput_zero_makespan_raises(self):
        rec = TraceRecorder()
        rec.record(make_pe(finished=0.0))
        with pytest.raises(ZeroDivisionError):
            rec.throughput_bytes_per_s(1)

    def test_max_compute_cycles(self):
        rec = TraceRecorder()
        rec.record(make_pe(0, 0, compute=10))
        rec.record(make_pe(0, 1, compute=99))
        assert rec.max_compute_cycles() == 99

    def test_total_relay_cycles(self):
        rec = TraceRecorder()
        rec.record(make_pe(0, 0, relay=5))
        rec.record(make_pe(0, 1, relay=7))
        assert rec.total_relay_cycles() == 12

    def test_per_row_grouping(self):
        rec = TraceRecorder()
        rec.record(make_pe(0, 0))
        rec.record(make_pe(0, 1))
        rec.record(make_pe(1, 0))
        rows = rec.per_row()
        assert len(rows[0]) == 2
        assert len(rows[1]) == 1

    def test_busiest_pe(self):
        rec = TraceRecorder()
        rec.record(make_pe(0, 0, compute=10, relay=5))
        rec.record(make_pe(0, 1, compute=8, relay=20))
        assert rec.busiest_pe().col == 1

    def test_busiest_pe_empty_raises(self):
        with pytest.raises(ValueError):
            TraceRecorder().busiest_pe()

    def test_load_imbalance_perfect(self):
        rec = TraceRecorder()
        rec.record(make_pe(0, 0, compute=100))
        rec.record(make_pe(0, 1, compute=100))
        assert rec.load_imbalance() == 1.0

    def test_load_imbalance_skewed(self):
        rec = TraceRecorder()
        rec.record(make_pe(0, 0, compute=300))
        rec.record(make_pe(0, 1, compute=100))
        assert rec.load_imbalance() == 1.5

    def test_load_imbalance_ignores_idle_pes(self):
        rec = TraceRecorder()
        rec.record(make_pe(0, 0, compute=100))
        rec.record(make_pe(0, 1, compute=0))
        assert rec.load_imbalance() == 1.0

    def test_empty_recorder_defaults(self):
        rec = TraceRecorder()
        assert rec.makespan_cycles == 0.0
        # No work anywhere means no load to be imbalanced: 0.0, which is
        # distinguishable from a genuinely perfect 1.0.
        assert rec.load_imbalance() == 0.0
        assert rec.max_compute_cycles() == 0

    def test_load_imbalance_compute_free_trace(self):
        rec = TraceRecorder()
        rec.record(make_pe(0, 0, compute=0, relay=0))
        rec.record(make_pe(0, 1, compute=0, relay=0))
        assert rec.load_imbalance() == 0.0
