"""Tests for the PE mesh and static route resolution."""

import pytest

from repro.errors import RoutingError
from repro.wse.color import Color
from repro.wse.fabric import Fabric
from repro.wse.wavelet import Direction


class TestMesh:
    def test_dimensions(self):
        fabric = Fabric(3, 5)
        assert fabric.rows == 3
        assert fabric.cols == 5
        assert fabric.num_pes == 15

    def test_pe_coordinates(self):
        fabric = Fabric(2, 2)
        assert fabric.pe(1, 0).coord == (1, 0)

    def test_out_of_bounds_pe_raises(self):
        fabric = Fabric(2, 2)
        with pytest.raises(RoutingError):
            fabric.pe(2, 0)
        with pytest.raises(RoutingError):
            fabric.pe(0, -1)

    def test_oversized_mesh_rejected(self):
        with pytest.raises(ValueError):
            Fabric(10_000, 1)
        with pytest.raises(ValueError):
            Fabric(1, 0)

    def test_iteration_covers_all_pes(self):
        fabric = Fabric(3, 4)
        assert len(list(fabric)) == 12

    def test_neighbors(self):
        fabric = Fabric(3, 3)
        assert fabric.neighbor(1, 1, Direction.EAST).coord == (1, 2)
        assert fabric.neighbor(1, 1, Direction.NORTH).coord == (0, 1)
        assert fabric.neighbor(0, 0, Direction.WEST) is None
        assert fabric.neighbor(2, 2, Direction.SOUTH) is None

    def test_custom_sram_budget(self):
        fabric = Fabric(1, 1, sram_bytes=1024)
        assert fabric.pe(0, 0).sram.capacity == 1024


class TestRouteResolution:
    def test_single_hop(self):
        fabric = Fabric(1, 2)
        color = Color(0)
        fabric.set_route(0, 0, color, Direction.RAMP, Direction.EAST)
        fabric.set_route(0, 1, color, Direction.WEST, Direction.RAMP)
        route = fabric.resolve(0, 0, color)
        assert route.destination == (0, 1)
        assert route.hops == 1

    def test_multi_hop_pass_through(self):
        fabric = Fabric(1, 4)
        color = Color(2)
        fabric.route_row_segment(0, 0, 3, color)
        route = fabric.resolve(0, 0, color)
        assert route.destination == (0, 3)
        assert route.hops == 3

    def test_row_segment_requires_eastward(self):
        fabric = Fabric(1, 4)
        with pytest.raises(RoutingError):
            fabric.route_row_segment(0, 3, 1, Color(0))

    def test_route_leaving_mesh_raises(self):
        fabric = Fabric(1, 2)
        color = Color(0)
        fabric.set_route(0, 1, color, Direction.RAMP, Direction.EAST)
        with pytest.raises(RoutingError, match="leaves the mesh"):
            fabric.resolve(0, 1, color)

    def test_missing_intermediate_rule_raises(self):
        fabric = Fabric(1, 3)
        color = Color(0)
        fabric.set_route(0, 0, color, Direction.RAMP, Direction.EAST)
        # PE (0,1) has no rule for this color.
        with pytest.raises(RoutingError, match="no route"):
            fabric.resolve(0, 0, color)

    def test_vertical_route(self):
        fabric = Fabric(3, 1)
        color = Color(1)
        fabric.set_route(0, 0, color, Direction.RAMP, Direction.SOUTH)
        fabric.set_route(1, 0, color, Direction.NORTH, Direction.SOUTH)
        fabric.set_route(2, 0, color, Direction.NORTH, Direction.RAMP)
        route = fabric.resolve(0, 0, color)
        assert route.destination == (2, 0)
        assert route.hops == 2

    def test_loopback_on_self(self):
        fabric = Fabric(1, 1)
        color = Color(0)
        fabric.set_route(0, 0, color, Direction.RAMP, Direction.RAMP)
        route = fabric.resolve(0, 0, color)
        assert route.destination == (0, 0)
        assert route.hops == 0
