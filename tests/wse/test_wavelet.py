"""Tests for wavelets and cardinal directions."""

import numpy as np
import pytest

from repro.wse.wavelet import Direction, Wavelet, wavelet_count


class TestDirection:
    def test_opposites_are_involutive(self):
        for d in Direction:
            assert d.opposite.opposite is d

    def test_ramp_is_its_own_opposite(self):
        assert Direction.RAMP.opposite is Direction.RAMP

    def test_east_west_pair(self):
        assert Direction.EAST.opposite is Direction.WEST

    def test_north_south_pair(self):
        assert Direction.NORTH.opposite is Direction.SOUTH

    def test_deltas_sum_to_zero_for_opposite_pairs(self):
        for d in Direction:
            dr, dc = d.delta
            odr, odc = d.opposite.delta
            assert (dr + odr, dc + odc) == (0, 0)

    def test_east_moves_along_columns(self):
        assert Direction.EAST.delta == (0, 1)

    def test_south_moves_along_rows(self):
        assert Direction.SOUTH.delta == (1, 0)

    def test_ramp_does_not_move(self):
        assert Direction.RAMP.delta == (0, 0)


class TestWavelet:
    def test_f32_round_trip(self):
        w = Wavelet.from_f32(3, 1.5)
        assert w.as_f32() == 1.5

    def test_f32_round_trip_negative(self):
        w = Wavelet.from_f32(0, -0.1)
        assert w.as_f32() == np.float32(-0.1)

    def test_i32_round_trip(self):
        assert Wavelet.from_i32(1, -123456).as_i32() == -123456

    def test_i32_extremes(self):
        assert Wavelet.from_i32(0, 2**31 - 1).as_i32() == 2**31 - 1
        assert Wavelet.from_i32(0, -(2**31)).as_i32() == -(2**31)

    def test_rejects_oversized_payload(self):
        with pytest.raises(ValueError):
            Wavelet(color=0, payload=2**32)

    def test_rejects_bad_color(self):
        with pytest.raises(ValueError):
            Wavelet(color=99, payload=0)

    def test_meta_does_not_affect_equality(self):
        a = Wavelet(color=1, payload=7, meta={"src": (0, 0)})
        b = Wavelet(color=1, payload=7, meta={"src": (5, 5)})
        assert a == b


class TestWaveletCount:
    def test_int_passthrough(self):
        assert wavelet_count(10) == 10

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            wavelet_count(-1)

    def test_bytes_rounded_up_to_words(self):
        assert wavelet_count(b"\x00" * 5) == 2
        assert wavelet_count(b"\x00" * 8) == 2
        assert wavelet_count(b"") == 0

    def test_f32_array_counts_elements(self):
        assert wavelet_count(np.zeros(7, dtype=np.float32)) == 7

    def test_f64_array_counts_two_wavelets_per_element(self):
        assert wavelet_count(np.zeros(7, dtype=np.float64)) == 14

    def test_u8_array_counts_elements(self):
        # Sub-word payloads still occupy one wavelet each (the fabric's
        # minimum granularity, paper 5.1.1).
        assert wavelet_count(np.zeros(3, dtype=np.uint8)) == 3

    def test_2d_array_uses_total_size(self):
        assert wavelet_count(np.zeros((4, 5), dtype=np.int32)) == 20
