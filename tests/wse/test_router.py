"""Tests for per-PE fabric routers."""

import pytest

from repro.errors import RoutingError
from repro.wse.color import Color
from repro.wse.router import RouteRule, Router
from repro.wse.wavelet import Direction


def rule(color_id=0, inputs=Direction.WEST, output=Direction.RAMP):
    return RouteRule.make(Color(color_id), inputs, output)


class TestRouteRule:
    def test_make_single_input(self):
        r = rule()
        assert r.inputs == frozenset({Direction.WEST})

    def test_make_multiple_inputs(self):
        r = rule(inputs=(Direction.WEST, Direction.NORTH))
        assert Direction.NORTH in r.inputs

    def test_empty_inputs_rejected(self):
        with pytest.raises(RoutingError):
            RouteRule(Color(0), frozenset(), Direction.RAMP)

    def test_reflection_rejected(self):
        # WEST -> WEST would bounce the wavelet back where it came from.
        with pytest.raises(RoutingError):
            rule(inputs=Direction.WEST, output=Direction.WEST)

    def test_ramp_to_ramp_allowed(self):
        # RAMP in / RAMP out is a local loopback, legal on the device.
        r = rule(inputs=Direction.RAMP, output=Direction.RAMP)
        assert r.output is Direction.RAMP


class TestRouter:
    def test_route_follows_rule(self):
        router = Router()
        router.set_route(rule(0, Direction.WEST, Direction.EAST))
        assert router.route(0, Direction.WEST) is Direction.EAST

    def test_missing_color_raises(self):
        with pytest.raises(RoutingError, match="no route"):
            Router().route(5, Direction.WEST)

    def test_wrong_input_direction_raises(self):
        router = Router()
        router.set_route(rule(0, Direction.WEST, Direction.RAMP))
        with pytest.raises(RoutingError, match="only accepts"):
            router.route(0, Direction.NORTH)

    def test_conflicting_reinstall_raises(self):
        router = Router()
        router.set_route(rule(0, Direction.WEST, Direction.RAMP))
        with pytest.raises(RoutingError, match="conflicting"):
            router.set_route(rule(0, Direction.WEST, Direction.EAST))

    def test_identical_reinstall_is_idempotent(self):
        router = Router()
        router.set_route(rule(0))
        router.set_route(rule(0))  # no error
        assert router.has_route(0)

    def test_independent_colors(self):
        router = Router()
        router.set_route(rule(0, Direction.WEST, Direction.RAMP))
        router.set_route(rule(1, Direction.RAMP, Direction.EAST))
        assert router.route(0, Direction.WEST) is Direction.RAMP
        assert router.route(1, Direction.RAMP) is Direction.EAST

    def test_accepts(self):
        router = Router()
        router.set_route(rule(0, Direction.WEST, Direction.RAMP))
        assert router.accepts(0, Direction.WEST)
        assert not router.accepts(0, Direction.EAST)
        assert not router.accepts(7, Direction.WEST)
