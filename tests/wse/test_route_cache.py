"""Tests for the static-route memo in Fabric.resolve."""

import pytest

from repro.errors import RoutingError
from repro.wse.color import Color
from repro.wse.fabric import Fabric
from repro.wse.wavelet import Direction


def _eastward_chain(fabric: Fabric, color: Color, row: int, cols: int):
    fabric.route_row_segment(row, 0, cols - 1, color)


class TestRouteCacheHits:
    def test_repeated_resolve_hits_the_cache(self):
        fabric = Fabric(1, 5)
        color = Color(0)
        _eastward_chain(fabric, color, 0, 5)
        first = fabric.resolve(0, 0, color)
        assert fabric.route_cache_hits == 0
        assert fabric.route_cache_size > 0
        for _ in range(3):
            again = fabric.resolve(0, 0, color)
            assert again == first
        assert fabric.route_cache_hits == 3

    def test_one_walk_warms_every_traversed_position(self):
        # Resolving from the source caches the downstream positions too,
        # so a k-PE relay chain pays one O(k) walk total.
        fabric = Fabric(1, 6)
        color = Color(1)
        _eastward_chain(fabric, color, 0, 6)
        fabric.resolve(0, 0, color)
        size_after_first = fabric.route_cache_size
        assert size_after_first == 6  # source + 4 relays + destination
        mid = fabric.resolve(0, 3, color, entering=Direction.WEST)
        assert fabric.route_cache_hits == 1
        assert mid.destination == (0, 5)
        assert mid.hops == 2
        assert fabric.route_cache_size == size_after_first

    def test_cached_and_walked_routes_agree(self):
        fabric = Fabric(2, 4)
        cold = Fabric(2, 4, cache_routes=False)
        color = Color(2)
        for f in (fabric, cold):
            _eastward_chain(f, color, 1, 4)
        for col in range(3):
            entering = Direction.RAMP if col == 0 else Direction.WEST
            assert fabric.resolve(1, col, color, entering) == cold.resolve(
                1, col, color, entering
            )
        assert cold.route_cache_size == 0
        assert cold.route_cache_hits == 0


class TestRouteCacheInvalidation:
    def test_set_route_clears_the_cache(self):
        fabric = Fabric(1, 3)
        color = Color(0)
        fabric.set_route(0, 0, color, Direction.RAMP, Direction.EAST)
        fabric.set_route(0, 1, color, Direction.WEST, Direction.RAMP)
        short = fabric.resolve(0, 0, color)
        assert short.destination == (0, 1)
        assert fabric.route_cache_size > 0
        # Extend the route: PE(0,1) now forwards east instead of delivering.
        other = Color(1)
        fabric.set_route(0, 1, other, Direction.WEST, Direction.EAST)
        assert fabric.route_cache_size == 0  # any rule change invalidates
        fabric.pe(0, 1).router.rules.pop(color.id)
        fabric.set_route(0, 1, color, Direction.WEST, Direction.EAST)
        fabric.set_route(0, 2, color, Direction.WEST, Direction.RAMP)
        rerouted = fabric.resolve(0, 0, color)
        assert rerouted.destination == (0, 2)
        assert rerouted.hops == 2

    def test_set_route_resets_hit_and_miss_counters(self):
        """Counters are per-run: installing a route marks a new program,
        so numbers reported by ``ceresz sim --metrics`` never include a
        previous run's traffic on the same fabric."""
        fabric = Fabric(1, 3)
        color = Color(0)
        fabric.route_row_segment(0, 0, 2, color)
        fabric.resolve(0, 0, color)  # miss + walk
        fabric.resolve(0, 0, color)  # hit
        assert fabric.route_cache_misses == 1
        assert fabric.route_cache_hits == 1
        other = Color(1)
        fabric.set_route(0, 0, other, Direction.RAMP, Direction.EAST)
        assert fabric.route_cache_hits == 0
        assert fabric.route_cache_misses == 0
        assert fabric.route_cache_size == 0

    def test_miss_counter_tracks_cold_lookups(self):
        fabric = Fabric(1, 3)
        color = Color(0)
        fabric.route_row_segment(0, 0, 2, color)
        assert fabric.route_cache_misses == 0
        fabric.resolve(0, 0, color)
        assert fabric.route_cache_misses == 1
        fabric.resolve(0, 0, color)
        assert fabric.route_cache_misses == 1  # warm now
        # The uncached fabric never counts hits or misses.
        cold = Fabric(1, 3, cache_routes=False)
        cold.route_row_segment(0, 0, 2, color)
        cold.resolve(0, 0, color)
        assert cold.route_cache_misses == 0
        assert cold.route_cache_hits == 0

    def test_error_paths_stay_uncached(self):
        fabric = Fabric(1, 2)
        color = Color(0)
        fabric.set_route(0, 0, color, Direction.RAMP, Direction.EAST)
        # No rule at PE(0,1): the walk fails and must not poison the cache.
        with pytest.raises(RoutingError):
            fabric.resolve(0, 0, color)
        assert fabric.route_cache_size == 0
        fabric.set_route(0, 1, color, Direction.WEST, Direction.RAMP)
        assert fabric.resolve(0, 0, color).destination == (0, 1)
