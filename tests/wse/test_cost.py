"""Tests for the calibrated cycle model (paper Tables 1-3)."""

import pytest

from repro.config import BLOCK_SIZE
from repro.errors import ModelError
from repro.wse.cost import PAPER_CYCLE_MODEL, CycleModel, StageCost


class TestStageCost:
    def test_linear_in_block_length(self):
        stage = StageCost("s", per_element=10.0)
        assert stage.cycles(32) == 320.0
        assert stage.cycles(64) == 640.0

    def test_per_bit_scales_with_fl(self):
        stage = StageCost("s", per_bit=100.0)
        assert stage.cycles(32, fl=3) == 300.0
        assert stage.cycles(32, fl=0) == 0.0

    def test_per_bit_scales_with_block_length_too(self):
        stage = StageCost("s", per_bit=100.0)
        assert stage.cycles(64, fl=1) == 200.0

    def test_invalid_inputs(self):
        stage = StageCost("s", fixed=1.0)
        with pytest.raises(ModelError):
            stage.cycles(0)
        with pytest.raises(ModelError):
            stage.cycles(32, fl=-1)


class TestPaperCalibration:
    """The model constants must reproduce the paper's tables at L=32."""

    def test_prequant_matches_table2(self):
        # Paper Table 2: Pre-Quant 6051-6111; our calibrated mean 6114.
        assert PAPER_CYCLE_MODEL.prequant_cycles() == pytest.approx(
            6114, rel=0.02
        )

    def test_multiplication_dominates_prequant(self):
        # "Multiplication takes approximately 80% of the quantization time."
        frac = PAPER_CYCLE_MODEL.multiplication.cycles() / (
            PAPER_CYCLE_MODEL.prequant_cycles()
        )
        assert 0.75 <= frac <= 0.88

    def test_lorenzo_matches_table1(self):
        assert PAPER_CYCLE_MODEL.lorenzo.cycles() == pytest.approx(975)

    def test_encode_matches_table3_cesm(self):
        # CESM-ATM: fl=17 -> 37124 cycles.
        assert PAPER_CYCLE_MODEL.encode_cycles(17) == pytest.approx(
            37124, rel=0.02
        )

    def test_encode_matches_table3_hacc(self):
        assert PAPER_CYCLE_MODEL.encode_cycles(13) == pytest.approx(
            29181, rel=0.02
        )

    def test_encode_matches_table3_qmcpack(self):
        assert PAPER_CYCLE_MODEL.encode_cycles(12) == pytest.approx(
            27188, rel=0.02
        )

    def test_bitshuffle_per_bit_constant(self):
        # Table 3's fit: 33609/17 = 1977 cycles per effective bit.
        per_bit = PAPER_CYCLE_MODEL.bit_shuffle.cycles(BLOCK_SIZE, 1)
        assert per_bit == pytest.approx(33609 / 17, rel=0.01)


class TestBlockAggregates:
    def test_zero_block_cheaper_than_any_encode(self):
        model = PAPER_CYCLE_MODEL
        zero = model.compress_block_cycles(0, zero=True)
        for fl in range(1, 33):
            assert zero < model.compress_block_cycles(fl)

    def test_compress_monotone_in_fl(self):
        model = PAPER_CYCLE_MODEL
        costs = [model.compress_block_cycles(fl) for fl in range(33)]
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_decompress_cheaper_than_compress(self):
        """No Max/GetLength at decode; throughput Figs 11 vs 12."""
        model = PAPER_CYCLE_MODEL
        for fl in (1, 8, 17, 32):
            assert model.decompress_block_cycles(fl) < (
                model.compress_block_cycles(fl)
            )

    def test_zero_decompress_path(self):
        model = PAPER_CYCLE_MODEL
        assert model.decompress_block_cycles(0, zero=True) < (
            model.decompress_block_cycles(1)
        )

    def test_relay_scales_with_words(self):
        model = PAPER_CYCLE_MODEL
        assert model.relay_block_cycles(64) == 2 * model.relay_block_cycles(32)

    def test_forward_more_expensive_than_relay(self):
        # C2 > C1: the forward includes memory-to-fabric DSD setup.
        model = PAPER_CYCLE_MODEL
        assert model.forward_block_cycles() > model.relay_block_cycles()

    def test_relay_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            PAPER_CYCLE_MODEL.relay_block_cycles(0)
        with pytest.raises(ModelError):
            PAPER_CYCLE_MODEL.forward_block_cycles(-1)

    def test_custom_model_is_independent(self):
        custom = CycleModel(c1_relay=10.0)
        assert custom.relay_block_cycles() == 10.0
        assert PAPER_CYCLE_MODEL.c1_relay != 10.0
