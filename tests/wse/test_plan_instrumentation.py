"""Per-node instrumentation a lowered plan leaves behind after a run."""

import numpy as np
import pytest

from repro.config import BLOCK_SIZE
from repro.core.plan import plan_multi_pipeline, plan_row_parallel
from repro.wse.program import Program

EPS = 0.05


@pytest.fixture(scope="module")
def blocks():
    rng = np.random.default_rng(7)
    data = np.cumsum(rng.normal(size=6 * BLOCK_SIZE))
    return data.reshape(6, BLOCK_SIZE)


def _run_lowered(plan, rows, cols):
    prog = Program(rows, cols)
    lowered = prog.load_plan(plan)
    report = prog.run()
    return lowered, report


class TestNodeCounters:
    def test_rows_plan_counts_emitted_blocks(self, blocks):
        plan = plan_row_parallel(blocks, EPS, rows=2, cols=1)
        lowered, report = _run_lowered(plan, 2, 1)
        assert sum(nc.blocks_emitted for nc in lowered.counters) == 6
        assert report.trace.total_blocks_relayed() == 0

    def test_multi_plan_counts_relays_and_wavelets(self, blocks):
        plan = plan_multi_pipeline(blocks, EPS, rows=1, cols=3)
        lowered, report = _run_lowered(plan, 1, 3)
        # Fig 9 counted relay: col 0 forwards for cols 1-2, col 1 for col 2.
        by_pe = {(nc.row, nc.col): nc for nc in lowered.counters}
        assert by_pe[(0, 0)].blocks_relayed > by_pe[(0, 1)].blocks_relayed
        assert by_pe[(0, 2)].blocks_relayed == 0
        assert report.trace.total_blocks_relayed() == (
            by_pe[(0, 0)].blocks_relayed + by_pe[(0, 1)].blocks_relayed
        )
        assert report.trace.total_wavelets_sent() > 0

    def test_labels_carry_kind_and_coordinates(self, blocks):
        plan = plan_row_parallel(blocks, EPS, rows=2, cols=1)
        lowered, _ = _run_lowered(plan, 2, 1)
        labels = {nc.label for nc in lowered.counters}
        assert "compute@(0,0)" in labels
        assert "compute@(1,0)" in labels

    def test_stage_cycles_roll_up_to_coarse_steps(self, blocks):
        plan = plan_row_parallel(blocks, EPS, rows=2, cols=1)
        _, report = _run_lowered(plan, 2, 1)
        steps = report.trace.step_cycle_totals()
        assert set(steps) == {"prequant", "lorenzo", "encode"}
        assert all(v > 0 for v in steps.values())

    def test_stage_totals_match_compute_cycles(self, blocks):
        """Counters partition the busy cycles the PEs charged (the PE
        rounds each spend to whole cycles, the counters keep them raw)."""
        plan = plan_row_parallel(blocks, EPS, rows=2, cols=1)
        prog = Program(2, 1)
        prog.load_plan(plan)
        report = prog.run()
        counted = sum(report.trace.stage_cycle_totals().values())
        charged = sum(t.compute_cycles for t in report.trace.traces)
        assert counted == pytest.approx(charged, rel=1e-3)


class TestProgramLoadPlan:
    def test_outputs_hold_one_record_per_block(self, blocks):
        plan = plan_row_parallel(blocks, EPS, rows=2, cols=1)
        prog = Program(2, 1)
        lowered = prog.load_plan(plan)
        prog.run()
        records = lowered.outputs.records
        assert sorted(records) == list(range(6))
        assert all(isinstance(r, bytes) and r for r in records.values())

    def test_colors_come_from_program_allocator(self, blocks):
        prog = Program(2, 1)
        held = prog.colors.allocate("held")
        plan = plan_row_parallel(blocks, EPS, rows=2, cols=1)
        lowered = prog.load_plan(plan)
        ids = {c.id for c in lowered.colors.values()}
        assert held.id not in ids
