"""DeadlockError messages must say which PE is stuck on what, since when."""

import numpy as np
import pytest

from repro.errors import DeadlockError
from repro.wse.color import ColorAllocator
from repro.wse.dsd import FabinDsd, FaboutDsd, Mem1dDsd
from repro.wse.engine import Engine
from repro.wse.fabric import Fabric
from repro.wse.pe import Task


def _post_recv(pe, color, done_color, *, extent=4, delay=0.0):
    def recv(ctx):
        if delay:
            ctx.spend(delay)
        ctx.mov32(
            Mem1dDsd("in"),
            FabinDsd(color, extent=extent),
            on_complete=done_color,
        )

    pe.alloc_buffer("in", np.zeros(extent, dtype=np.float32))
    pe.bind_task(color, Task("recv", recv))
    pe.bind_task(done_color, Task("done", lambda ctx: None))


class TestQuiescenceDiagnostics:
    def test_message_names_pe_color_extent_and_posting_cycle(self):
        fabric = Fabric(2, 2)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_data = colors.allocate("data")
        c_done = colors.allocate("done")
        fabric.route_row_segment(1, 0, 1, c_data)
        pe = fabric.pe(1, 1)
        _post_recv(pe, c_data, c_done, extent=6, delay=120)
        engine.schedule_activation(pe, c_data.id, 0.0)
        with pytest.raises(DeadlockError) as exc:
            engine.run()
        message = str(exc.value)
        assert "unmatched" in message
        assert f"PE(1,1) color {c_data.id}" in message
        assert "recv of 6 wavelets" in message
        assert "'in'" in message
        assert "posted at cycle 120" in message

    def test_message_lists_every_stuck_pe(self):
        fabric = Fabric(2, 2)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_data = colors.allocate("data")
        c_done = colors.allocate("done")
        for row in range(2):
            fabric.route_row_segment(row, 0, 1, c_data)
            pe = fabric.pe(row, 1)
            _post_recv(pe, c_data, c_done)
            engine.schedule_activation(pe, c_data.id, 0.0)
        with pytest.raises(DeadlockError) as exc:
            engine.run()
        message = str(exc.value)
        assert f"PE(0,1) color {c_data.id}" in message
        assert f"PE(1,1) color {c_data.id}" in message

    def test_stuck_relay_reports_both_colors(self):
        from repro.wse.wavelet import Direction

        fabric = Fabric(1, 2)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_in = colors.allocate("in")
        c_out = colors.allocate("out")
        c_go = colors.allocate("go")
        fabric.set_route(0, 0, c_in, Direction.WEST, Direction.RAMP)
        fabric.set_route(0, 0, c_out, Direction.RAMP, Direction.EAST)
        pe = fabric.pe(0, 0)
        pe.bind_task(
            c_go,
            Task(
                "relay",
                lambda ctx: ctx.mov32(
                    FaboutDsd(c_out, extent=4), FabinDsd(c_in, extent=4)
                ),
            ),
        )
        engine.schedule_activation(pe, c_go.id, 0.0)
        with pytest.raises(DeadlockError) as exc:
            engine.run()
        message = str(exc.value)
        assert f"PE(0,0) color {c_in.id}" in message
        assert f"relay of 4 wavelets to color {c_out.id}" in message

    def test_legacy_matchers_still_hold(self):
        """Old tests match "unmatched" and "PE\\(0,0\\) color"; keep both."""
        fabric = Fabric(1, 1)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_data = colors.allocate("data")
        c_done = colors.allocate("done")
        pe = fabric.pe(0, 0)
        _post_recv(pe, c_data, c_done)
        engine.schedule_activation(pe, c_data.id, 0.0)
        with pytest.raises(DeadlockError, match=r"unmatched"):
            try:
                engine.run()
            except DeadlockError as err:
                assert "PE(0,0) color" in str(err)
                raise


class TestBudgetDiagnostics:
    def test_budget_message_includes_pending_receives(self):
        fabric = Fabric(1, 1)
        engine = Engine(fabric, max_events=40)
        colors = ColorAllocator()
        c_spin = colors.allocate("spin")
        c_data = colors.allocate("data")
        c_done = colors.allocate("done")
        pe = fabric.pe(0, 0)
        _post_recv(pe, c_data, c_done)
        pe.bind_task(c_spin, Task("spin", lambda ctx: ctx.activate(c_spin)))
        engine.schedule_activation(pe, c_data.id, 0.0)
        engine.schedule_activation(pe, c_spin.id, 0.0)
        with pytest.raises(DeadlockError) as exc:
            engine.run()
        message = str(exc.value)
        assert "budget" in message
        assert "pending:" in message
        assert f"PE(0,0) color {c_data.id}" in message
        assert "posted at cycle" in message

    def test_budget_message_without_pending_has_no_suffix(self):
        fabric = Fabric(1, 1)
        engine = Engine(fabric, max_events=40)
        colors = ColorAllocator()
        c_spin = colors.allocate("spin")
        pe = fabric.pe(0, 0)
        pe.bind_task(c_spin, Task("spin", lambda ctx: ctx.activate(c_spin)))
        engine.schedule_activation(pe, c_spin.id, 0.0)
        with pytest.raises(DeadlockError, match="budget") as exc:
            engine.run()
        assert "pending:" not in str(exc.value)
