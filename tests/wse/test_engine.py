"""Tests for the discrete-event engine: dataflow semantics and timing."""

import numpy as np
import pytest

from repro.errors import DeadlockError, TaskError
from repro.wse.color import ColorAllocator
from repro.wse.dsd import FabinDsd, FaboutDsd, Mem1dDsd
from repro.wse.engine import Engine
from repro.wse.fabric import Fabric
from repro.wse.pe import Task
from repro.wse.wavelet import Direction


def two_pe_setup():
    fabric = Fabric(1, 2)
    engine = Engine(fabric)
    colors = ColorAllocator()
    return fabric, engine, colors


class TestPointToPoint:
    def test_send_receive_array(self):
        fabric, engine, colors = two_pe_setup()
        c_data = colors.allocate("data")
        c_done = colors.allocate("done")
        fabric.route_row_segment(0, 0, 1, c_data)
        src = fabric.pe(0, 0)
        dst = fabric.pe(0, 1)
        payload = np.arange(8, dtype=np.float32)
        src.alloc_buffer("out", payload)
        dst.alloc_buffer("in", np.zeros(8, dtype=np.float32))
        got = {}

        def sender(ctx):
            ctx.mov32(FaboutDsd(c_data, extent=8), Mem1dDsd("out"))
            ctx.halt()

        def receiver(ctx):
            ctx.mov32(
                Mem1dDsd("in"), FabinDsd(c_data, extent=8), on_complete=c_done
            )

        def on_done(ctx):
            got["data"] = ctx.buffer("in").copy()
            ctx.halt()

        c_go = colors.allocate("go")
        src.bind_task(c_go, Task("send", sender))
        dst.bind_task(c_go, Task("recv", receiver))
        dst.bind_task(c_done, Task("done", on_done))
        engine.schedule_activation(src, c_go.id, 0.0)
        engine.schedule_activation(dst, c_go.id, 0.0)
        engine.run()
        assert np.array_equal(got["data"], payload)

    def test_receive_before_send_matches(self):
        """Posting the receive first must not deadlock (dataflow order)."""
        fabric, engine, colors = two_pe_setup()
        c_data = colors.allocate("data")
        c_done = colors.allocate("done")
        c_go = colors.allocate("go")
        fabric.route_row_segment(0, 0, 1, c_data)
        src, dst = fabric.pe(0, 0), fabric.pe(0, 1)
        src.alloc_buffer("out", np.ones(4, dtype=np.float32))
        dst.alloc_buffer("in", np.zeros(4, dtype=np.float32))
        done = []

        dst.bind_task(
            c_go,
            Task(
                "recv",
                lambda ctx: ctx.mov32(
                    Mem1dDsd("in"),
                    FabinDsd(c_data, extent=4),
                    on_complete=c_done,
                ),
            ),
        )
        dst.bind_task(c_done, Task("done", lambda ctx: done.append(ctx.now)))

        def sender(ctx):
            ctx.spend(500)  # send long after the receive was posted
            ctx.mov32(FaboutDsd(c_data, extent=4), Mem1dDsd("out"))

        src.bind_task(c_go, Task("send", sender))
        engine.schedule_activation(dst, c_go.id, 0.0)
        engine.schedule_activation(src, c_go.id, 0.0)
        engine.run()
        assert done and done[0] >= 500

    def test_transfer_timing_charges_wavelets_and_hops(self):
        fabric = Fabric(1, 4)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_data = colors.allocate("data")
        c_done = colors.allocate("done")
        c_go = colors.allocate("go")
        fabric.route_row_segment(0, 0, 3, c_data)
        src, dst = fabric.pe(0, 0), fabric.pe(0, 3)
        src.alloc_buffer("out", np.zeros(16, dtype=np.float32))
        dst.alloc_buffer("in", np.zeros(16, dtype=np.float32))
        arrival = []

        src.bind_task(
            c_go,
            Task(
                "send",
                lambda ctx: ctx.mov32(
                    FaboutDsd(c_data, extent=16), Mem1dDsd("out")
                ),
            ),
        )
        dst.bind_task(
            c_go,
            Task(
                "recv",
                lambda ctx: ctx.mov32(
                    Mem1dDsd("in"),
                    FabinDsd(c_data, extent=16),
                    on_complete=c_done,
                ),
            ),
        )
        dst.bind_task(c_done, Task("done", lambda ctx: arrival.append(ctx.now)))
        engine.schedule_activation(src, c_go.id, 0.0)
        engine.schedule_activation(dst, c_go.id, 0.0)
        engine.run()
        # 16 wavelets injected + 3 hops = 19 cycles minimum.
        assert arrival[0] >= 19


class TestRelay:
    def test_fabric_to_fabric_relay(self):
        fabric = Fabric(1, 3)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_a = colors.allocate("a")  # edge -> middle
        c_b = colors.allocate("b")  # middle -> right
        c_done = colors.allocate("done")
        c_go = colors.allocate("go")
        fabric.set_route(0, 0, c_a, Direction.WEST, Direction.RAMP)
        fabric.set_route(0, 0, c_b, Direction.RAMP, Direction.EAST)
        fabric.set_route(0, 1, c_b, Direction.WEST, Direction.RAMP)
        mid, right = fabric.pe(0, 0), fabric.pe(0, 1)
        right.alloc_buffer("in", np.zeros(4, dtype=np.float32))
        got = {}

        mid.bind_task(
            c_go,
            Task(
                "relay",
                lambda ctx: ctx.mov32(
                    FaboutDsd(c_b, extent=4), FabinDsd(c_a, extent=4)
                ),
            ),
        )
        right.bind_task(
            c_go,
            Task(
                "recv",
                lambda ctx: ctx.mov32(
                    Mem1dDsd("in"), FabinDsd(c_b, extent=4), on_complete=c_done
                ),
            ),
        )
        right.bind_task(
            c_done,
            Task("done", lambda ctx: got.update(v=ctx.buffer("in").copy())),
        )
        engine.schedule_activation(mid, c_go.id, 0.0)
        engine.schedule_activation(right, c_go.id, 0.0)
        engine.inject(0, 0, c_a, np.array([1, 2, 3, 4], dtype=np.float32))
        engine.run()
        assert np.array_equal(got["v"], [1, 2, 3, 4])

    def test_relay_flag_charges_relay_cycles(self):
        fabric = Fabric(1, 2)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_a = colors.allocate("a")
        c_b = colors.allocate("b")
        c_go = colors.allocate("go")
        fabric.set_route(0, 0, c_a, Direction.WEST, Direction.RAMP)
        fabric.set_route(0, 0, c_b, Direction.RAMP, Direction.EAST)
        fabric.set_route(0, 1, c_b, Direction.WEST, Direction.RAMP)
        mid = fabric.pe(0, 0)
        sink = fabric.pe(0, 1)
        sink.alloc_buffer("in", np.zeros(4, dtype=np.float32))
        c_done = colors.allocate("done")

        mid.bind_task(
            c_go,
            Task(
                "relay",
                lambda ctx: ctx.mov32(
                    FaboutDsd(c_b, extent=4),
                    FabinDsd(c_a, extent=4),
                    relay=True,
                ),
            ),
        )
        sink.bind_task(
            c_go,
            Task(
                "recv",
                lambda ctx: ctx.mov32(
                    Mem1dDsd("in"), FabinDsd(c_b, extent=4), on_complete=c_done
                ),
            ),
        )
        sink.bind_task(c_done, Task("done", lambda ctx: None))
        engine.schedule_activation(mid, c_go.id, 0.0)
        engine.schedule_activation(sink, c_go.id, 0.0)
        engine.inject(0, 0, c_a, np.zeros(4, dtype=np.float32))
        engine.run()
        assert mid.relay_cycles == 4  # injection of 4 wavelets


class TestLocalOps:
    def test_mem_to_mem_copy(self):
        fabric = Fabric(1, 1)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_go = colors.allocate("go")
        pe = fabric.pe(0, 0)
        pe.alloc_buffer("a", np.arange(6, dtype=np.float32))
        pe.alloc_buffer("b", np.zeros(6, dtype=np.float32))

        def copier(ctx):
            ctx.mov32(Mem1dDsd("b"), Mem1dDsd("a"))

        pe.bind_task(c_go, Task("copy", copier))
        engine.schedule_activation(pe, c_go.id, 0.0)
        engine.run()
        assert np.array_equal(pe.buffers["b"], np.arange(6))

    def test_mem_copy_size_mismatch_raises(self):
        fabric = Fabric(1, 1)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_go = colors.allocate("go")
        pe = fabric.pe(0, 0)
        pe.alloc_buffer("a", np.zeros(4, dtype=np.float32))
        pe.alloc_buffer("b", np.zeros(5, dtype=np.float32))
        pe.bind_task(
            c_go, Task("bad", lambda ctx: ctx.mov32(Mem1dDsd("b"), Mem1dDsd("a")))
        )
        engine.schedule_activation(pe, c_go.id, 0.0)
        with pytest.raises(TaskError, match="mismatch"):
            engine.run()


class TestScheduling:
    def test_tasks_serialize_on_one_pe(self):
        """A PE runs one task at a time; spends delay later activations."""
        fabric = Fabric(1, 1)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_a, c_b = colors.allocate("a"), colors.allocate("b")
        pe = fabric.pe(0, 0)
        times = []

        pe.bind_task(c_a, Task("a", lambda ctx: (times.append(ctx.now), ctx.spend(100))))
        pe.bind_task(c_b, Task("b", lambda ctx: times.append(ctx.now)))
        engine.schedule_activation(pe, c_a.id, 0.0)
        engine.schedule_activation(pe, c_b.id, 0.0)
        engine.run()
        assert times[0] == 0.0
        assert times[1] >= 100.0

    def test_activation_of_unbound_color_raises(self):
        fabric = Fabric(1, 1)
        engine = Engine(fabric)
        engine.schedule_activation(fabric.pe(0, 0), 7, 0.0)
        with pytest.raises(TaskError, match="no bound task"):
            engine.run()

    def test_unmatched_receive_is_a_deadlock(self):
        fabric, engine, colors = two_pe_setup()
        c_data = colors.allocate("data")
        c_go = colors.allocate("go")
        c_done = colors.allocate("done")
        fabric.route_row_segment(0, 0, 1, c_data)
        dst = fabric.pe(0, 1)
        dst.alloc_buffer("in", np.zeros(4, dtype=np.float32))
        dst.bind_task(
            c_go,
            Task(
                "recv",
                lambda ctx: ctx.mov32(
                    Mem1dDsd("in"), FabinDsd(c_data, extent=4),
                    on_complete=c_done,
                ),
            ),
        )
        dst.bind_task(c_done, Task("done", lambda ctx: None))
        engine.schedule_activation(dst, c_go.id, 0.0)
        with pytest.raises(DeadlockError, match="unmatched"):
            engine.run()

    def test_allow_pending_suppresses_deadlock(self):
        fabric, engine, colors = two_pe_setup()
        c_data = colors.allocate("data")
        c_go = colors.allocate("go")
        c_done = colors.allocate("done")
        fabric.route_row_segment(0, 0, 1, c_data)
        dst = fabric.pe(0, 1)
        dst.alloc_buffer("in", np.zeros(4, dtype=np.float32))
        dst.bind_task(
            c_go,
            Task(
                "recv",
                lambda ctx: ctx.mov32(
                    Mem1dDsd("in"), FabinDsd(c_data, extent=4),
                    on_complete=c_done,
                ),
            ),
        )
        dst.bind_task(c_done, Task("done", lambda ctx: None))
        engine.schedule_activation(dst, c_go.id, 0.0)
        report = engine.run(allow_pending=True)
        assert report.tasks_run == 1

    def test_extent_mismatch_on_receive_raises(self):
        fabric, engine, colors = two_pe_setup()
        c_data = colors.allocate("data")
        c_go = colors.allocate("go")
        c_done = colors.allocate("done")
        fabric.route_row_segment(0, 0, 1, c_data)
        dst = fabric.pe(0, 1)
        dst.alloc_buffer("in", np.zeros(8, dtype=np.float32))
        dst.bind_task(
            c_go,
            Task(
                "recv",
                lambda ctx: ctx.mov32(
                    Mem1dDsd("in"), FabinDsd(c_data, extent=8),
                    on_complete=c_done,
                ),
            ),
        )
        dst.bind_task(c_done, Task("done", lambda ctx: None))
        engine.schedule_activation(dst, c_go.id, 0.0)
        engine.inject(0, 1, c_data, np.zeros(4, dtype=np.float32))
        with pytest.raises(TaskError, match="expected 8"):
            engine.run()

    def test_event_budget_guards_livelock(self):
        fabric = Fabric(1, 1)
        engine = Engine(fabric, max_events=50)
        colors = ColorAllocator()
        c_go = colors.allocate("go")
        pe = fabric.pe(0, 0)
        pe.bind_task(c_go, Task("spin", lambda ctx: ctx.activate(c_go)))
        engine.schedule_activation(pe, c_go.id, 0.0)
        with pytest.raises(DeadlockError, match="budget"):
            engine.run()

    def test_report_aggregates(self):
        fabric = Fabric(1, 1)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_go = colors.allocate("go")
        pe = fabric.pe(0, 0)
        pe.bind_task(c_go, Task("work", lambda ctx: ctx.spend(42)))
        engine.schedule_activation(pe, c_go.id, 0.0)
        report = engine.run()
        assert report.tasks_run == 1
        assert report.makespan_cycles == 42
        assert report.trace.max_compute_cycles() == 42


class TestSramIntegration:
    def test_scratch_send_buffers_are_freed(self):
        fabric, engine, colors = two_pe_setup()
        c_data = colors.allocate("data")
        c_go = colors.allocate("go")
        c_done = colors.allocate("done")
        fabric.route_row_segment(0, 0, 1, c_data)
        src, dst = fabric.pe(0, 0), fabric.pe(0, 1)
        dst.alloc_buffer("in", np.zeros(4, dtype=np.float32))

        src.bind_task(
            c_go,
            Task(
                "send",
                lambda ctx: ctx.send(c_data, np.ones(4, dtype=np.float32)),
            ),
        )
        dst.bind_task(
            c_go,
            Task(
                "recv",
                lambda ctx: ctx.mov32(
                    Mem1dDsd("in"), FabinDsd(c_data, extent=4),
                    on_complete=c_done,
                ),
            ),
        )
        dst.bind_task(c_done, Task("done", lambda ctx: None))
        engine.schedule_activation(src, c_go.id, 0.0)
        engine.schedule_activation(dst, c_go.id, 0.0)
        engine.run()
        assert src.sram.used == 0  # scratch transmit buffer released


class TestOrderingAndScale:
    def test_deliveries_on_one_color_are_fifo(self):
        """Multiple queued arrivals must match pending receives in order."""
        fabric = Fabric(1, 1)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_in = colors.allocate("in")
        c_done = colors.allocate("done")
        pe = fabric.pe(0, 0)
        pe.alloc_buffer("buf", np.zeros(2, dtype=np.float32))
        got = []

        def recv(ctx):
            ctx.mov32(
                Mem1dDsd("buf"), FabinDsd(c_in, extent=2), on_complete=c_done
            )

        def done(ctx):
            got.append(float(ctx.buffer("buf")[0]))
            if len(got) < 4:
                ctx.activate(c_in)

        pe.bind_task(c_in, Task("recv", recv))
        pe.bind_task(c_done, Task("done", done))
        engine.schedule_activation(pe, c_in.id, 0.0)
        # All four chunks injected up-front, before any receive matches.
        for i in range(4):
            engine.inject(
                0, 0, c_in, np.full(2, float(i), dtype=np.float32), at=0.0
            )
        engine.run()
        assert got == [0.0, 1.0, 2.0, 3.0]

    @pytest.mark.slow
    def test_large_mesh_stress(self):
        """An 8x8 mesh over ~512 blocks: the engine must stay exact and
        bounded in events (no livelock, no quadratic blowup)."""
        from repro import CereSZ
        from repro.core.wse_compressor import WSECereSZ

        rng = np.random.default_rng(0)
        data = np.cumsum(rng.normal(size=32 * 512)).astype(np.float32)
        ref = CereSZ().compress(data, rel=1e-3)
        sim = WSECereSZ(rows=8, cols=8, strategy="multi")
        result = sim.compress(data, rel=1e-3)
        assert result.stream == ref.stream
        # Events scale ~linearly with blocks x columns.
        assert result.report.events_processed < 200_000
