"""Tests for the engine's route-following host send (``send_from``)."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.wse.color import ColorAllocator
from repro.wse.dsd import FabinDsd, Mem1dDsd
from repro.wse.engine import Engine
from repro.wse.fabric import Fabric
from repro.wse.pe import Task
from repro.wse.wavelet import Direction


def receiving_setup(cols=3):
    fabric = Fabric(1, cols)
    engine = Engine(fabric)
    colors = ColorAllocator()
    c = colors.allocate("data")
    c_go = colors.allocate("go")
    c_done = colors.allocate("done")
    fabric.route_row_segment(0, 0, cols - 1, c)
    sink = fabric.pe(0, cols - 1)
    sink.alloc_buffer("in", np.zeros(4, dtype=np.float32))
    got = []
    sink.bind_task(
        c_go,
        Task(
            "recv",
            lambda ctx: ctx.mov32(
                Mem1dDsd("in"), FabinDsd(c, extent=4), on_complete=c_done
            ),
        ),
    )
    sink.bind_task(
        c_done, Task("done", lambda ctx: got.append(ctx.buffer("in").copy()))
    )
    engine.schedule_activation(sink, c_go.id, 0.0)
    return fabric, engine, c, got


class TestSendFrom:
    def test_follows_the_route(self):
        fabric, engine, c, got = receiving_setup(cols=3)
        engine.send_from(0, 0, c, np.array([1, 2, 3, 4], dtype=np.float32))
        engine.run()
        assert np.array_equal(got[0], [1, 2, 3, 4])

    def test_arrival_time_includes_hops(self):
        fabric, engine, c, got = receiving_setup(cols=4)
        engine.send_from(0, 0, c, np.zeros(4, dtype=np.float32), at=100.0)
        report = engine.run()
        # 100 start + 4 wavelets + 3 hops.
        assert report.makespan_cycles >= 107.0

    def test_missing_route_raises_immediately(self):
        fabric = Fabric(1, 2)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c = colors.allocate("c")
        with pytest.raises(RoutingError):
            engine.send_from(0, 0, c, np.zeros(2, dtype=np.float32))
