"""Tests for the CSL-style program patterns."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.wse.program import Program


class TestStreamEastward:
    def test_chunks_arrive_in_order(self):
        prog = Program(1, 3)
        seen = []
        color = prog.stream_eastward(
            0, 0, 2, extent=4, count=3,
            on_chunk=lambda ctx, i, data: seen.append((i, data.copy())),
        )
        chunks = [np.full(4, v, dtype=np.float32) for v in (1.0, 2.0, 3.0)]
        prog.feed(0, 0, color, chunks)
        prog.run()
        assert [i for i, _ in seen] == [0, 1, 2]
        for (_, got), sent in zip(seen, chunks):
            assert np.array_equal(got, sent)

    def test_adjacent_pes(self):
        prog = Program(1, 2)
        seen = []
        color = prog.stream_eastward(
            0, 0, 1, extent=2, count=1,
            on_chunk=lambda ctx, i, data: seen.append(data.copy()),
        )
        prog.feed(0, 0, color, [np.array([7.0, 8.0], dtype=np.float32)])
        prog.run()
        assert np.array_equal(seen[0], [7.0, 8.0])

    def test_compute_cycles_can_be_charged(self):
        prog = Program(1, 2)
        color = prog.stream_eastward(
            0, 0, 1, extent=2, count=2,
            on_chunk=lambda ctx, i, data: ctx.spend(500),
        )
        prog.feed(0, 0, color, [np.zeros(2, dtype=np.float32)] * 2)
        report = prog.run()
        assert report.makespan_cycles >= 1000

    def test_westward_rejected(self):
        prog = Program(1, 3)
        with pytest.raises(RoutingError):
            prog.stream_eastward(
                0, 2, 0, extent=1, count=1, on_chunk=lambda *a: None
            )

    def test_parallel_rows_are_independent(self):
        prog = Program(2, 2)
        rows_seen = {0: [], 1: []}
        c0 = prog.stream_eastward(
            0, 0, 1, extent=2, count=1, name="r0",
            on_chunk=lambda ctx, i, d: rows_seen[0].append(d.copy()),
        )
        c1 = prog.stream_eastward(
            1, 0, 1, extent=2, count=1, name="r1",
            on_chunk=lambda ctx, i, d: rows_seen[1].append(d.copy()),
        )
        prog.feed(0, 0, c0, [np.array([1.0, 1.0], dtype=np.float32)])
        prog.feed(1, 0, c1, [np.array([2.0, 2.0], dtype=np.float32)])
        prog.run()
        assert rows_seen[0][0][0] == 1.0
        assert rows_seen[1][0][0] == 2.0


class TestRelayChain:
    def test_every_pe_gets_one_block_per_round(self):
        prog = Program(1, 4)
        got = {}
        color = prog.relay_chain(
            0, extent=2, rounds=2,
            on_block=lambda ctx, col, rnd, d: got.__setitem__(
                (col, rnd), d[0]
            ),
        )
        # Round-major, east-most block first within a round.
        blocks = []
        for rnd in range(2):
            for col in (3, 2, 1, 0):
                blocks.append(
                    np.full(2, 10 * rnd + col, dtype=np.float32)
                )
        prog.feed(0, 0, color, blocks)
        prog.run()
        for rnd in range(2):
            for col in range(4):
                assert got[(col, rnd)] == 10 * rnd + col

    def test_relay_cycles_decrease_eastward(self):
        prog = Program(1, 4)
        color = prog.relay_chain(
            0, extent=8, rounds=1, on_block=lambda *a: None
        )
        blocks = [np.full(8, c, dtype=np.float32) for c in (3, 2, 1, 0)]
        prog.feed(0, 0, color, blocks)
        prog.run()
        relay = [prog.fabric.pe(0, c).relay_cycles for c in range(4)]
        assert relay[0] > relay[1] > relay[2] > relay[3] == 0

    def test_single_column_chain(self):
        prog = Program(1, 1)
        got = []
        color = prog.relay_chain(
            0, extent=2, rounds=3,
            on_block=lambda ctx, col, rnd, d: got.append(d[0]),
        )
        prog.feed(
            0, 0, color,
            [np.full(2, v, dtype=np.float32) for v in (5, 6, 7)],
        )
        prog.run()
        assert got == [5, 6, 7]
