"""Failure injection into the WSE substrate: resource limits must bite.

The simulator's value over a plain reimplementation is that it *enforces*
the device's constraints — 48 KB SRAM, static single-output routes, the
data-triggered task model. These tests inject violations and verify the
substrate refuses them loudly, the way the real toolchain (or a hang)
would.
"""

import numpy as np
import pytest

from repro.errors import DeadlockError, MemoryError_, RoutingError, TaskError
from repro.core.mapping import build_multi_pipeline_program
from repro.wse.color import Color, ColorAllocator
from repro.wse.dsd import FabinDsd, Mem1dDsd
from repro.wse.engine import Engine
from repro.wse.fabric import Fabric
from repro.wse.pe import Task
from repro.wse.wavelet import Direction


class TestSramLimits:
    def test_program_buffers_must_fit_sram(self):
        """A mapping whose working set exceeds 48 KB cannot load.

        This is the paper's Section 4.4 constraint: when "the local memory
        is [not] large enough to hold the intermediate data", a longer
        pipeline (smaller per-PE state) becomes mandatory.
        """
        fabric = Fabric(1, 2, sram_bytes=64)  # pathologically small PE
        engine = Engine(fabric)
        blocks = np.zeros((4, 32), dtype=np.float64)
        with pytest.raises(MemoryError_, match="overflow"):
            build_multi_pipeline_program(fabric, engine, blocks, eps=0.1)

    def test_normal_mapping_fits_comfortably(self):
        fabric = Fabric(1, 2)
        engine = Engine(fabric)
        blocks = np.zeros((4, 32), dtype=np.float64)
        build_multi_pipeline_program(fabric, engine, blocks, eps=0.1)
        for pe in fabric:
            assert pe.sram.used < pe.sram.capacity // 10


class TestRoutingFaults:
    def test_send_without_route_fails_at_send_time(self):
        fabric = Fabric(1, 2)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_go = colors.allocate("go")
        c_out = colors.allocate("out")
        pe = fabric.pe(0, 0)
        pe.bind_task(
            c_go,
            Task(
                "send",
                lambda ctx: ctx.send(c_out, np.zeros(4, dtype=np.float32)),
            ),
        )
        engine.schedule_activation(pe, c_go.id, 0.0)
        with pytest.raises(RoutingError, match="no route"):
            engine.run()

    def test_route_off_the_east_edge_fails(self):
        fabric = Fabric(1, 1)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_go = colors.allocate("go")
        c_out = colors.allocate("out")
        fabric.set_route(0, 0, c_out, Direction.RAMP, Direction.EAST)
        pe = fabric.pe(0, 0)
        pe.bind_task(
            c_go,
            Task(
                "send",
                lambda ctx: ctx.send(c_out, np.zeros(2, dtype=np.float32)),
            ),
        )
        engine.schedule_activation(pe, c_go.id, 0.0)
        with pytest.raises(RoutingError, match="leaves the mesh"):
            engine.run()

    def test_wrong_direction_arrival_fails(self):
        """A wavelet entering a route from an unconfigured direction."""
        fabric = Fabric(2, 1)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c = colors.allocate("c")
        # (1,0) accepts this color only from the NORTH...
        fabric.set_route(1, 0, c, Direction.NORTH, Direction.RAMP)
        # ...but (0,0) is configured to be reached from RAMP going SOUTH is
        # fine; instead send from a router that emits EAST -> impossible in
        # a 1-wide mesh, so emit SOUTH from a conflicting entry direction:
        fabric.set_route(0, 0, c, Direction.RAMP, Direction.SOUTH)
        route = fabric.resolve(0, 0, c)
        assert route.destination == (1, 0)  # correct configuration works

        # Reconfiguring (1,0) to only accept WEST must break resolution.
        fabric2 = Fabric(2, 1)
        fabric2.set_route(0, 0, c, Direction.RAMP, Direction.SOUTH)
        fabric2.set_route(1, 0, c, Direction.WEST, Direction.RAMP)
        with pytest.raises(RoutingError, match="only accepts"):
            fabric2.resolve(0, 0, c)


class TestTaskModelFaults:
    def test_double_binding_a_color(self):
        fabric = Fabric(1, 1)
        pe = fabric.pe(0, 0)
        color = Color(0)
        pe.bind_task(color, Task("a", lambda ctx: None))
        with pytest.raises(TaskError, match="already bound"):
            pe.bind_task(color, Task("b", lambda ctx: None))

    def test_receive_into_missing_buffer(self):
        fabric = Fabric(1, 1)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_go = colors.allocate("go")
        c_in = colors.allocate("in")
        c_done = colors.allocate("done")
        pe = fabric.pe(0, 0)
        pe.bind_task(
            c_go,
            Task(
                "recv",
                lambda ctx: ctx.mov32(
                    Mem1dDsd("ghost"),
                    FabinDsd(c_in, extent=4),
                    on_complete=c_done,
                ),
            ),
        )
        pe.bind_task(c_done, Task("done", lambda ctx: None))
        engine.schedule_activation(pe, c_go.id, 0.0)
        engine.inject(0, 0, c_in, np.zeros(4, dtype=np.float32))
        with pytest.raises(TaskError, match="unknown buffer"):
            engine.run()

    def test_lost_wakeup_is_a_deadlock_not_a_hang(self):
        """A task waiting for data that never arrives must be diagnosed."""
        fabric = Fabric(1, 1)
        engine = Engine(fabric)
        colors = ColorAllocator()
        c_go = colors.allocate("go")
        c_in = colors.allocate("in")
        c_done = colors.allocate("done")
        pe = fabric.pe(0, 0)
        pe.alloc_buffer("buf", np.zeros(4, dtype=np.float32))
        pe.bind_task(
            c_go,
            Task(
                "recv",
                lambda ctx: ctx.mov32(
                    Mem1dDsd("buf"),
                    FabinDsd(c_in, extent=4),
                    on_complete=c_done,
                ),
            ),
        )
        pe.bind_task(c_done, Task("done", lambda ctx: None))
        engine.schedule_activation(pe, c_go.id, 0.0)
        with pytest.raises(DeadlockError, match="PE\\(0,0\\) color"):
            engine.run()
