"""Tests for the per-PE 48 KB SRAM allocator."""

import pytest

from repro.config import PE_SRAM_BYTES
from repro.errors import MemoryError_
from repro.wse.memory import SramAllocator


class TestSramAllocator:
    def test_default_capacity_is_48kb(self):
        assert SramAllocator().capacity == PE_SRAM_BYTES == 48 * 1024

    def test_alloc_and_free_accounting(self):
        sram = SramAllocator()
        sram.alloc("a", 1000)
        assert sram.used == 1000
        assert sram.free == PE_SRAM_BYTES - 1000
        sram.release("a")
        assert sram.used == 0

    def test_overflow_raises(self):
        sram = SramAllocator(capacity=100)
        sram.alloc("a", 60)
        with pytest.raises(MemoryError_, match="overflow"):
            sram.alloc("b", 50)

    def test_exact_fit_allowed(self):
        sram = SramAllocator(capacity=100)
        sram.alloc("a", 100)
        assert sram.free == 0

    def test_resize_existing_allocation(self):
        sram = SramAllocator(capacity=100)
        sram.alloc("a", 90)
        sram.alloc("a", 50)  # shrink in place
        assert sram.used == 50
        sram.alloc("b", 50)

    def test_resize_beyond_capacity_raises(self):
        sram = SramAllocator(capacity=100)
        sram.alloc("a", 50)
        sram.alloc("b", 40)
        with pytest.raises(MemoryError_):
            sram.alloc("a", 70)

    def test_release_unknown_raises(self):
        with pytest.raises(MemoryError_, match="unknown"):
            SramAllocator().release("ghost")

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            SramAllocator().alloc("a", -1)

    def test_reserved_bytes_count_against_budget(self):
        sram = SramAllocator(capacity=100, reserved=30)
        assert sram.free == 70
        with pytest.raises(MemoryError_):
            sram.alloc("a", 71)

    def test_invalid_reserved_rejected(self):
        with pytest.raises(ValueError):
            SramAllocator(capacity=100, reserved=200)

    def test_zero_byte_allocation_tracks_name(self):
        sram = SramAllocator()
        sram.alloc("marker", 0)
        assert "marker" in sram
        assert sram.size_of("marker") == 0

    def test_snapshot_is_a_copy(self):
        sram = SramAllocator()
        sram.alloc("a", 10)
        snap = sram.snapshot()
        snap["a"] = 999
        assert sram.size_of("a") == 10
