"""Tests for the SZ3 baseline (multi-level interpolation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import CereSZ
from repro.errors import CompressionError, ErrorBoundError, FormatError
from repro.baselines import SZ3
from repro.metrics.errorbound import check_error_bound


class TestRoundTrip:
    def test_1d(self, smooth_field):
        codec = SZ3()
        result = codec.compress(smooth_field, rel=1e-3)
        back = codec.decompress(result.stream)
        assert back.shape == smooth_field.shape
        assert check_error_bound(smooth_field, back, result.eps)

    def test_2d(self, field_2d):
        codec = SZ3()
        result = codec.compress(field_2d, rel=1e-3)
        back = codec.decompress(result.stream)
        assert back.shape == field_2d.shape
        assert check_error_bound(field_2d, back, result.eps)

    def test_3d(self, field_3d):
        codec = SZ3()
        result = codec.compress(field_3d, rel=1e-4)
        back = codec.decompress(result.stream)
        assert check_error_bound(field_3d, back, result.eps)

    def test_rough_field(self, rough_field):
        codec = SZ3()
        result = codec.compress(rough_field, rel=1e-4)
        back = codec.decompress(result.stream)
        assert check_error_bound(rough_field, back, result.eps)

    def test_tiny_arrays(self):
        codec = SZ3()
        for n in (1, 2, 3, 5, 65):
            data = np.linspace(0, 1, n).astype(np.float32)
            if n == 1:
                data[0] = 0.5
                result = codec.compress(data, eps=0.01)
            else:
                result = codec.compress(data, rel=1e-3)
            back = codec.decompress(result.stream)
            assert check_error_bound(data, back, result.eps), n

    def test_odd_shapes(self):
        codec = SZ3()
        rng = np.random.default_rng(0)
        for shape in [(7,), (13, 3), (5, 9, 11), (65, 2)]:
            data = np.cumsum(
                rng.normal(size=int(np.prod(shape)))
            ).reshape(shape).astype(np.float32)
            result = codec.compress(data, rel=1e-3)
            back = codec.decompress(result.stream)
            assert back.shape == shape
            assert check_error_bound(data, back, result.eps), shape

    @given(
        data=hnp.arrays(
            np.float32,
            st.integers(1, 200),
            elements=st.floats(
                -1e4, 1e4, width=32, allow_nan=False, allow_infinity=False
            ),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, data):
        codec = SZ3()
        try:
            if data.size > 1 and float(data.max()) != float(data.min()):
                result = codec.compress(data, rel=1e-3)
            else:
                result = codec.compress(data, eps=0.01)
        except ErrorBoundError:
            # Legitimate refusal: the requested bound is below the float32
            # resolution at this magnitude (e.g. subnormal-range data).
            return
        back = codec.decompress(result.stream)
        assert check_error_bound(data, back, result.eps)


class TestRatioCharacter:
    def test_dominates_ceresz_on_smooth_data(self, field_2d):
        """Table 5: SZ tops every ratio column by a wide margin."""
        sz = SZ3().compress(field_2d, rel=1e-2)
        ceresz = CereSZ().compress(field_2d, rel=1e-2)
        assert sz.ratio > 2 * ceresz.ratio

    def test_huge_ratio_on_very_smooth_field(self):
        x = np.linspace(0, 2 * np.pi, 200_000).astype(np.float32)
        data = np.sin(x)
        result = SZ3().compress(data, rel=1e-3)
        assert result.ratio > 100  # SZ reaches 1e2-1e5 in Table 5

    def test_ratio_decreases_with_tighter_bound(self, field_2d):
        r = [SZ3().compress(field_2d, rel=rel).ratio for rel in (1e-2, 1e-3, 1e-4)]
        assert r[0] > r[1] > r[2]


class TestValidation:
    def test_bad_levels(self):
        with pytest.raises(CompressionError):
            SZ3(levels=0)
        with pytest.raises(CompressionError):
            SZ3(levels=99)

    def test_levels_affect_anchor_overhead(self, smooth_field):
        shallow = SZ3(levels=2).compress(smooth_field, rel=1e-3)
        deep = SZ3(levels=6).compress(smooth_field, rel=1e-3)
        # Fewer levels = denser anchor grid = bigger stream.
        assert shallow.compressed_bytes > deep.compressed_bytes

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            SZ3().compress(np.zeros(0, dtype=np.float32), rel=1e-3)

    def test_both_bounds_rejected(self, smooth_field):
        with pytest.raises(ErrorBoundError):
            SZ3().compress(smooth_field, eps=0.1, rel=1e-3)

    def test_bad_magic(self, smooth_field):
        stream = bytearray(SZ3().compress(smooth_field, eps=1.0).stream)
        stream[:4] = b"ZZZZ"
        with pytest.raises(FormatError, match="magic"):
            SZ3().decompress(bytes(stream))

    def test_truncated(self, smooth_field):
        stream = SZ3().compress(smooth_field, eps=1.0).stream
        with pytest.raises(FormatError):
            SZ3().decompress(stream[: len(stream) // 2])
