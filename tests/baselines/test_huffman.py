"""Tests for the canonical Huffman codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import CompressionError, FormatError
from repro.baselines.huffman import CanonicalCode, HuffmanCodec, build_code


class TestBuildCode:
    def test_single_symbol_gets_one_bit(self):
        code = build_code(np.array([7, 7, 7]))
        assert code.symbols.tolist() == [7]
        assert code.lengths.tolist() == [1]

    def test_frequent_symbols_get_shorter_codes(self):
        values = np.array([0] * 1000 + [1] * 10 + [2] * 10 + [3] * 5)
        code = build_code(values)
        lengths = dict(zip(code.symbols.tolist(), code.lengths.tolist()))
        assert lengths[0] < lengths[3]

    def test_lengths_satisfy_kraft_equality(self):
        rng = np.random.default_rng(0)
        values = rng.geometric(0.4, size=2000)
        code = build_code(values)
        kraft = sum(2.0 ** -int(l) for l in code.lengths)
        assert kraft == pytest.approx(1.0)

    def test_codewords_are_prefix_free(self):
        rng = np.random.default_rng(1)
        values = rng.integers(-20, 20, size=500)
        code = build_code(values)
        words = code.codewords()
        entries = sorted(
            (int(l), int(w)) for l, w in zip(code.lengths, words)
        )
        for i, (l1, w1) in enumerate(entries):
            for l2, w2 in entries[i + 1 :]:
                # w1 (length l1) must not prefix w2 (length l2 >= l1).
                assert (w2 >> (l2 - l1)) != w1

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            build_code(np.zeros(0, dtype=np.int64))


class TestCodecRoundTrip:
    @pytest.mark.parametrize(
        "values",
        [
            [5],
            [1, 1, 1, 1],
            [0, 1, 0, 1, 0, 1],
            [-3, 0, 3, 0, 0, 0, 7],
            list(range(-50, 50)),
        ],
    )
    def test_small_cases(self, values):
        codec = HuffmanCodec()
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(arr)), arr)

    def test_geometric_distribution(self):
        rng = np.random.default_rng(2)
        values = (rng.geometric(0.3, size=20000) - 1) * rng.choice(
            [-1, 1], size=20000
        )
        codec = HuffmanCodec()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_compresses_skewed_data(self):
        values = np.zeros(10000, dtype=np.int64)
        values[::100] = 5
        codec = HuffmanCodec()
        stream = codec.encode(values)
        assert len(stream) < values.nbytes / 4

    def test_large_symbol_values(self):
        values = np.array([2**50, -(2**50), 0, 0], dtype=np.int64)
        codec = HuffmanCodec()
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    @given(
        hnp.arrays(
            np.int64,
            st.integers(1, 400),
            elements=st.integers(-(2**30), 2**30),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, values):
        codec = HuffmanCodec()
        assert np.array_equal(codec.decode(codec.encode(values)), values)


class TestCodecErrors:
    def test_truncated_header(self):
        with pytest.raises(FormatError):
            HuffmanCodec().decode(b"\x00\x01")

    def test_truncated_table(self):
        codec = HuffmanCodec()
        stream = codec.encode(np.arange(10))
        with pytest.raises(FormatError):
            codec.decode(stream[:20])

    def test_truncated_payload(self):
        codec = HuffmanCodec()
        stream = codec.encode(np.arange(64))
        with pytest.raises(FormatError, match="exhausted"):
            codec.decode(stream[:-4])

    def test_canonical_code_shape_mismatch(self):
        with pytest.raises(CompressionError):
            CanonicalCode(
                symbols=np.arange(3), lengths=np.array([1, 2], dtype=np.uint8)
            )


class TestDecoderEquivalence:
    """The table-accelerated decoder must match the canonical bit-walk."""

    @pytest.mark.parametrize("seed", range(10))
    def test_fast_equals_bitwalk(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4000))
        values = rng.zipf(1.4, size=n).astype(np.int64) * rng.choice(
            [-1, 1], size=n
        )
        codec = HuffmanCodec()
        stream = codec.encode(values)
        code = build_code(values)
        payload = np.frombuffer(
            stream, dtype=np.uint8, offset=16 + len(code.symbols) * 9
        )
        walk = HuffmanCodec._decode_bits(
            np.unpackbits(payload), code, n, code.max_length
        )
        fast = codec.decode(stream)
        assert np.array_equal(fast, walk)
        assert np.array_equal(fast, values)

    def test_long_codes_hit_the_fallback(self):
        """A very skewed alphabet produces codes beyond the 12-bit table."""
        values = np.concatenate(
            [np.zeros(1 << 16, dtype=np.int64), np.arange(5000)]
        )
        codec = HuffmanCodec()
        code = build_code(values)
        assert code.max_length > HuffmanCodec._TABLE_BITS  # fallback engaged
        assert np.array_equal(codec.decode(codec.encode(values)), values)

    def test_truncated_stream_still_detected(self):
        codec = HuffmanCodec()
        stream = codec.encode(np.arange(256))
        with pytest.raises(FormatError, match="exhausted"):
            codec.decode(stream[:-8])
