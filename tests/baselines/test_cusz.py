"""Tests for the cuSZ baseline (N-D Lorenzo + Huffman)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import CompressionError, ErrorBoundError, FormatError
from repro.baselines import CuSZ
from repro.metrics.errorbound import check_error_bound


class TestRoundTrip:
    def test_1d(self, smooth_field):
        codec = CuSZ()
        result = codec.compress(smooth_field, rel=1e-3)
        back = codec.decompress(result.stream)
        assert back.shape == smooth_field.shape
        assert check_error_bound(smooth_field, back, result.eps)

    def test_2d(self, field_2d):
        codec = CuSZ()
        result = codec.compress(field_2d, rel=1e-3)
        back = codec.decompress(result.stream)
        assert back.shape == field_2d.shape
        assert check_error_bound(field_2d, back, result.eps)

    def test_3d(self, field_3d):
        codec = CuSZ()
        result = codec.compress(field_3d, rel=1e-3)
        back = codec.decompress(result.stream)
        assert check_error_bound(field_3d, back, result.eps)

    def test_absolute_bound(self, smooth_field):
        codec = CuSZ()
        result = codec.compress(smooth_field, eps=0.5)
        back = codec.decompress(result.stream)
        assert check_error_bound(smooth_field, back, 0.5)

    @given(
        data=hnp.arrays(
            np.float32,
            st.tuples(st.integers(2, 12), st.integers(2, 12)),
            elements=st.floats(
                -1e4, 1e4, width=32, allow_nan=False, allow_infinity=False
            ),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property_2d(self, data):
        codec = CuSZ()
        if float(data.max()) == float(data.min()):
            return  # REL undefined on constants; CereSZ handles that case
        try:
            result = codec.compress(data, rel=1e-3)
        except ErrorBoundError:
            return  # bound below float32 resolution: correct refusal
        back = codec.decompress(result.stream)
        assert check_error_bound(data, back, result.eps)


class TestOutliers:
    def test_outliers_beyond_radius_survive(self):
        codec = CuSZ(radius=4)
        data = np.zeros(64, dtype=np.float32)
        data[10] = 1000.0  # residual blows past radius 4
        result = codec.compress(data, eps=0.5)
        back = codec.decompress(result.stream)
        assert check_error_bound(data, back, 0.5)

    def test_all_outliers(self):
        codec = CuSZ(radius=1)
        rng = np.random.default_rng(0)
        data = (rng.normal(size=128) * 1e4).astype(np.float32)
        result = codec.compress(data, eps=0.01)
        back = codec.decompress(result.stream)
        assert check_error_bound(data, back, 0.01)


class TestStructure:
    def test_nd_lorenzo_beats_1d_blocked_on_2d_data(self, field_2d):
        """Why cuSZ can out-compress CereSZ on multi-dimensional fields."""
        from repro import CereSZ

        cusz = CuSZ().compress(field_2d, rel=1e-3)
        ceresz = CereSZ().compress(field_2d, rel=1e-3)
        assert cusz.ratio > ceresz.ratio

    def test_huffman_floor_caps_ratio_near_32(self):
        """One bit per symbol minimum = the ~31x Table 5 ceiling."""
        data = np.zeros(32 * 4096, dtype=np.float32)
        data[0] = 1.0
        result = CuSZ().compress(data, rel=1e-2)
        assert 25 <= result.ratio <= 33

    def test_zero_fraction_reported(self, sparse_field):
        result = CuSZ().compress(sparse_field, rel=1e-2)
        assert result.zero_block_fraction > 0.9


class TestValidation:
    def test_bad_radius(self):
        with pytest.raises(CompressionError):
            CuSZ(radius=0)

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            CuSZ().compress(np.zeros(0, dtype=np.float32), rel=1e-3)

    def test_both_bounds_rejected(self, smooth_field):
        with pytest.raises(ErrorBoundError):
            CuSZ().compress(smooth_field, eps=1.0, rel=1e-3)

    def test_bad_magic(self, smooth_field):
        stream = bytearray(CuSZ().compress(smooth_field, eps=1.0).stream)
        stream[:4] = b"XXXX"
        with pytest.raises(FormatError, match="magic"):
            CuSZ().decompress(bytes(stream))

    def test_truncated_stream(self):
        with pytest.raises(FormatError):
            CuSZ().decompress(b"CZ")
