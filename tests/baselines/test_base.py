"""Tests for the compressor registry and interface conformance."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.baselines.base import BaselineCompressor, get_compressor


ALL_NAMES = ("CereSZ", "SZp", "cuSZp", "cuSZ", "SZ")


class TestRegistry:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_all_paper_compressors_registered(self, name):
        codec = get_compressor(name)
        assert codec.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError, match="unknown compressor"):
            get_compressor("gzip")

    def test_instances_are_fresh(self):
        assert get_compressor("SZp") is not get_compressor("SZp")


class TestProtocolConformance:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_satisfies_protocol(self, name):
        assert isinstance(get_compressor(name), BaselineCompressor)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_device_attribution(self, name):
        codec = get_compressor(name)
        assert codec.device in ("CS-2", "A100", "EPYC-7742")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_uniform_compress_interface(self, name, smooth_field):
        codec = get_compressor(name)
        result = codec.compress(smooth_field, rel=1e-3)
        assert result.original_bytes == smooth_field.nbytes
        assert result.ratio > 1.0
        back = codec.decompress(result.stream)
        assert back.shape == smooth_field.shape


class TestCrossCompressorProperties:
    def test_prequant_family_reconstructions_identical(self, smooth_field):
        """CereSZ / SZp / cuSZp / cuSZ quantize identically (paper Obs 3)."""
        outs = []
        for name in ("CereSZ", "SZp", "cuSZp", "cuSZ"):
            codec = get_compressor(name)
            result = codec.compress(smooth_field, rel=1e-3)
            outs.append(codec.decompress(result.stream))
        for other in outs[1:]:
            assert np.array_equal(outs[0], other)

    def test_table5_ordering_on_smooth_2d(self, field_2d):
        """SZ > {cuSZ, SZp} >= CereSZ on a smooth 2-D field."""
        ratios = {
            name: get_compressor(name).compress(field_2d, rel=1e-3).ratio
            for name in ALL_NAMES
        }
        assert ratios["SZ"] > ratios["cuSZ"]
        assert ratios["SZ"] > ratios["SZp"]
        assert ratios["SZp"] >= ratios["CereSZ"]
        assert ratios["cuSZp"] == pytest.approx(ratios["SZp"])


class TestPsnrTargetUniformity:
    """Every codec accepts a PSNR target and hits it (uniform interface)."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_target_achieved(self, name, rng):
        from repro.metrics.quality import psnr as measure

        data = np.cumsum(rng.normal(size=32 * 600)).astype(np.float32)
        codec = get_compressor(name)
        result = codec.compress(data, psnr=70.0)
        got = measure(data, codec.decompress(result.stream))
        assert got == pytest.approx(70.0, abs=0.8), name

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_psnr_exclusive_with_other_modes(self, name, smooth_field):
        from repro.errors import ErrorBoundError

        codec = get_compressor(name)
        with pytest.raises(ErrorBoundError):
            codec.compress(smooth_field, psnr=70.0, rel=1e-3)
