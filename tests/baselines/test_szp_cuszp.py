"""Tests for the SZp and cuSZp baselines (shared block format)."""

import numpy as np
import pytest

from repro import CereSZ
from repro.baselines import CuSZp, SZp
from repro.metrics.errorbound import check_error_bound


class TestSZp:
    def test_round_trip(self, smooth_field):
        codec = SZp()
        result = codec.compress(smooth_field, rel=1e-3)
        back = codec.decompress(result.stream)
        assert check_error_bound(smooth_field, back, result.eps)

    def test_identity(self):
        codec = SZp()
        assert codec.name == "SZp"
        assert codec.device == "EPYC-7742"
        assert codec.header_width == 1

    def test_ratio_cap_is_128(self, rng):
        field = np.zeros(32 * 400, dtype=np.float32)
        field[0] = 100.0  # establish a range
        result = SZp().compress(field, rel=1e-2)
        assert 100 < result.ratio <= 128.5

    def test_beats_ceresz_on_sparse(self, sparse_field):
        szp = SZp().compress(sparse_field, rel=1e-2)
        ceresz = CereSZ().compress(sparse_field, rel=1e-2)
        assert szp.ratio > ceresz.ratio

    def test_same_reconstruction_as_ceresz(self, smooth_field):
        """Paper 5.4: all pre-quantization compressors reconstruct alike."""
        szp = SZp()
        ceresz = CereSZ()
        b1 = szp.decompress(szp.compress(smooth_field, rel=1e-3).stream)
        b2 = ceresz.decompress(
            ceresz.compress(smooth_field, rel=1e-3).stream
        )
        assert np.array_equal(b1, b2)


class TestCuSZp:
    def test_round_trip(self, rough_field):
        codec = CuSZp()
        result = codec.compress(rough_field, rel=1e-4)
        back = codec.decompress(result.stream)
        assert check_error_bound(rough_field, back, result.eps)

    def test_identity(self):
        codec = CuSZp()
        assert codec.name == "cuSZp"
        assert codec.device == "A100"

    def test_identical_streams_to_szp(self, smooth_field):
        """cuSZp differs from SZp in execution, not in format."""
        s1 = SZp().compress(smooth_field, rel=1e-3).stream
        s2 = CuSZp().compress(smooth_field, rel=1e-3).stream
        assert s1 == s2

    def test_cross_decode(self, smooth_field):
        """An SZp stream decodes with a cuSZp instance and vice versa."""
        stream = SZp().compress(smooth_field, rel=1e-3).stream
        back = CuSZp().decompress(stream)
        assert back.shape == smooth_field.shape
