"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CereSZ


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def smooth_field(rng) -> np.ndarray:
    """A 1-D random walk: smooth enough to compress well (float32)."""
    return np.cumsum(rng.normal(size=4096)).astype(np.float32)


@pytest.fixture
def rough_field(rng) -> np.ndarray:
    """White noise: the adversarial case for a Lorenzo predictor."""
    return (100.0 * rng.standard_normal(4096)).astype(np.float32)


@pytest.fixture
def sparse_field(rng) -> np.ndarray:
    """Mostly zeros with a few spikes: exercises the zero-block path."""
    field = np.zeros(4096, dtype=np.float32)
    idx = rng.choice(4096, size=40, replace=False)
    field[idx] = rng.normal(size=40).astype(np.float32) * 50
    return field


@pytest.fixture
def field_2d(rng) -> np.ndarray:
    base = np.add.outer(
        np.sin(np.linspace(0, 4, 64)), np.cos(np.linspace(0, 7, 96))
    )
    return (base * 10 + 0.01 * rng.standard_normal((64, 96))).astype(
        np.float32
    )


@pytest.fixture
def field_3d(rng) -> np.ndarray:
    z = np.linspace(-1, 1, 24)[:, None, None]
    y = np.linspace(-1, 1, 20)[None, :, None]
    x = np.linspace(-1, 1, 28)[None, None, :]
    return (np.exp(-(x * x + y * y + z * z) * 3.0) * 100).astype(np.float32)


@pytest.fixture
def codec() -> CereSZ:
    return CereSZ()
