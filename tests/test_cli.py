"""Tests for the ``ceresz`` command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.io import load_f32, save_f32


@pytest.fixture
def field_file(tmp_path, rng):
    path = tmp_path / "field.f32"
    data = np.cumsum(rng.normal(size=2048)).astype(np.float32)
    save_f32(path, data)
    return path, data


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compress_requires_one_bound(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "a", "b"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compress", "a", "b", "--rel", "1e-3", "--eps", "0.1"]
            )

    def test_shape_parsing(self):
        args = build_parser().parse_args(
            ["compress", "a", "b", "--rel", "1e-3", "--shape", "4x5x6"]
        )
        assert args.shape == (4, 5, 6)


class TestCompressDecompress:
    def test_round_trip(self, tmp_path, field_file, capsys):
        path, data = field_file
        csz = tmp_path / "out.csz"
        out = tmp_path / "back.f32"
        assert main([
            "compress", str(path), str(csz), "--rel", "1e-3"
        ]) == 0
        printed = capsys.readouterr().out
        assert "ratio" in printed
        assert main(["decompress", str(csz), str(out)]) == 0
        back = load_f32(out)
        assert back.shape == data.shape
        rng_span = float(data.max() - data.min())
        assert np.max(np.abs(back - data)) <= 1e-3 * rng_span

    def test_absolute_bound(self, tmp_path, field_file):
        path, data = field_file
        csz = tmp_path / "out.csz"
        assert main([
            "compress", str(path), str(csz), "--eps", "0.5"
        ]) == 0

    def test_info(self, tmp_path, field_file, capsys):
        path, _ = field_file
        csz = tmp_path / "out.csz"
        main(["compress", str(path), str(csz), "--rel", "1e-3"])
        assert main(["info", str(csz)]) == 0
        out = capsys.readouterr().out
        assert "block size:   32" in out


class TestDataset:
    def test_summary(self, capsys):
        assert main(["dataset", "QMCPack"]) == 0
        out = capsys.readouterr().out
        assert "Quantum Monte Carlo" in out

    def test_write_field(self, tmp_path):
        out = tmp_path / "f.f32"
        assert main(["dataset", "HACC", "--field", "1", "--out", str(out)]) == 0
        assert out.stat().st_size > 0


class TestSimulate:
    def test_simulate_reports_match(self, field_file, capsys):
        path, _ = field_file
        assert main([
            "simulate", str(path), "--rows", "2", "--cols", "3",
            "--limit-blocks", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "stream matches reference: True" in out

    def test_pipeline_strategy(self, field_file, capsys):
        path, _ = field_file
        assert main([
            "simulate", str(path), "--rows", "1", "--cols", "4",
            "--strategy", "pipeline", "--pipeline-length", "4",
            "--limit-blocks", "8",
        ]) == 0
        assert "True" in capsys.readouterr().out


class TestPlan:
    def test_plan_prints_placement(self, field_file, capsys):
        path, _ = field_file
        assert main([
            "plan", str(path), "--rows", "2", "--cols", "4",
            "--limit-blocks", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "mapping plan: strategy=multi" in out
        assert "mesh=2x4" in out
        assert "colors:" in out
        assert "placement:" in out
        assert "SRAM:" in out

    def test_plan_pipeline_strategy(self, field_file, capsys):
        path, _ = field_file
        assert main([
            "plan", str(path), "--rows", "1", "--cols", "4",
            "--strategy", "pipeline", "--pipeline-length", "4",
            "--limit-blocks", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "strategy=pipeline" in out
        assert "state_len:" in out


class TestStreaming:
    def test_stream_unstream_round_trip(self, tmp_path, rng):
        a = rng.normal(size=300).astype(np.float32)
        b = (rng.normal(size=300) * 2).astype(np.float32)
        pa, pb = tmp_path / "a.f32", tmp_path / "b.f32"
        save_f32(pa, a)
        save_f32(pb, b)
        arch = tmp_path / "arch.cszs"
        assert main([
            "stream", str(pa), str(pb), "--out", str(arch), "--eps", "0.01"
        ]) == 0
        assert main([
            "unstream", str(arch), "--prefix", str(tmp_path / "out_")
        ]) == 0
        out0 = load_f32(tmp_path / "out_0.f32")
        out1 = load_f32(tmp_path / "out_1.f32")
        assert np.max(np.abs(out0 - a)) <= 0.01
        assert np.max(np.abs(out1 - b)) <= 0.01


class TestTablesAndFigures:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_tables_print(self, n, capsys):
        assert main(["table", str(n)]) == 0
        assert "Table" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["figure", "7"]) == 0
        assert "Fig 7" in capsys.readouterr().out

    def test_fig13(self, capsys):
        assert main(["figure", "13"]) == 0
        out = capsys.readouterr().out
        assert "1-PE" in out

    def test_fig15(self, capsys):
        assert main(["figure", "15"]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out
        assert "identical: True" in out


class TestObservability:
    def test_sim_trace_writes_valid_chrome_json(self, tmp_path, field_file,
                                                capsys):
        import json

        from repro.obs import validate_chrome_trace

        path, _ = field_file
        trace_path = tmp_path / "trace.json"
        assert main([
            "sim", str(path), "--rows", "2", "--cols", "1",
            "--strategy", "rows", "--limit-blocks", "8",
            "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace ->" in out
        with open(trace_path) as fh:
            trace = json.load(fh)
        validate_chrome_trace(trace)
        # --trace defaults to timeline level: wafer events present.
        assert any(
            e["ph"] == "X" and e["pid"] == 1 for e in trace["traceEvents"]
        )
        assert trace["otherData"]["metrics"]

    def test_sim_metrics_prints_route_cache_counters(self, field_file,
                                                     capsys):
        path, _ = field_file
        assert main([
            "sim", str(path), "--rows", "2", "--cols", "2",
            "--limit-blocks", "8", "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "sim.route_cache{outcome=hit}" in out
        assert "sim.route_cache{outcome=miss}" in out
        assert "sim.engine.events" in out

    def test_sim_trace_level_spans_skips_timeline(self, tmp_path, field_file):
        import json

        path, _ = field_file
        trace_path = tmp_path / "trace.json"
        assert main([
            "sim", str(path), "--rows", "2", "--cols", "1",
            "--strategy", "rows", "--limit-blocks", "8",
            "--trace", str(trace_path), "--trace-level", "spans",
        ]) == 0
        with open(trace_path) as fh:
            trace = json.load(fh)
        assert not any(
            e["ph"] == "X" and e["pid"] == 1 for e in trace["traceEvents"]
        )

    def test_trace_subcommand_summarizes(self, tmp_path, field_file, capsys):
        path, _ = field_file
        trace_path = tmp_path / "trace.json"
        main([
            "sim", str(path), "--rows", "2", "--cols", "1",
            "--strategy", "rows", "--limit-blocks", "8",
            "--trace", str(trace_path),
        ])
        capsys.readouterr()
        assert main(["trace", str(trace_path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "top spans" in out
        assert "busiest PEs" in out
        assert "engine.run" in out

    def test_compress_trace_and_metrics(self, tmp_path, field_file, capsys):
        import json

        from repro.obs import validate_chrome_trace

        path, data = field_file
        csz = tmp_path / "out.csz"
        trace_path = tmp_path / "host.json"
        assert main([
            "compress", str(path), str(csz), "--eps", "0.5",
            "--jobs", "2", "--trace", str(trace_path), "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "host.shards{direction=compress}" in out
        assert "host.bytes_in{direction=compress}" in out
        with open(trace_path) as fh:
            trace = json.load(fh)
        validate_chrome_trace(trace)
        names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert {"load", "compress", "write"} <= names

    def test_decompress_metrics(self, tmp_path, field_file, capsys):
        path, _ = field_file
        csz = tmp_path / "out.csz"
        out_f32 = tmp_path / "back.f32"
        main(["compress", str(path), str(csz), "--eps", "0.5", "--jobs", "2"])
        capsys.readouterr()
        assert main([
            "decompress", str(csz), str(out_f32), "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "host.shards{direction=decompress}" in out


class TestContainerFlags:
    def test_default_compress_is_indexed(self, tmp_path, field_file, capsys):
        path, _ = field_file
        csz = tmp_path / "out.csz"
        assert main([
            "compress", str(path), str(csz), "--rel", "1e-3"
        ]) == 0
        capsys.readouterr()
        assert main(["info", str(csz)]) == 0
        assert "v2 (indexed)" in capsys.readouterr().out

    def test_no_index_writes_v1(self, tmp_path, field_file, capsys):
        path, data = field_file
        csz = tmp_path / "out.csz"
        out = tmp_path / "back.f32"
        assert main([
            "compress", str(path), str(csz), "--rel", "1e-3", "--no-index"
        ]) == 0
        capsys.readouterr()
        assert main(["info", str(csz)]) == 0
        assert "v1" in capsys.readouterr().out
        assert main(["decompress", str(csz), str(out)]) == 0
        back = load_f32(out)
        assert back.shape == data.shape

    def test_jobs_round_trip(self, tmp_path, field_file, capsys):
        path, data = field_file
        csz = tmp_path / "out.csz"
        out = tmp_path / "back.f32"
        assert main([
            "compress", str(path), str(csz), "--eps", "0.5", "--jobs", "2"
        ]) == 0
        capsys.readouterr()
        assert main(["info", str(csz)]) == 0
        assert "sharded" in capsys.readouterr().out
        assert main([
            "decompress", str(csz), str(out), "--jobs", "2"
        ]) == 0
        back = load_f32(out)
        assert np.max(np.abs(back - data)) <= 0.5

    def test_stream_sink_with_jobs(self, tmp_path, rng):
        from repro.datasets.io import save_f32

        a = np.cumsum(rng.normal(size=1024)).astype(np.float32)
        b = (a * 1.5).astype(np.float32)
        pa, pb = tmp_path / "a.f32", tmp_path / "b.f32"
        save_f32(pa, a)
        save_f32(pb, b)
        arch = tmp_path / "arch.cszs"
        assert main([
            "stream", str(pa), str(pb), "--out", str(arch),
            "--eps", "0.1", "--jobs", "2",
        ]) == 0
        assert main([
            "unstream", str(arch), "--prefix", str(tmp_path / "out_"),
            "--jobs", "2",
        ]) == 0
        out0 = load_f32(tmp_path / "out_0.f32")
        out1 = load_f32(tmp_path / "out_1.f32")
        assert np.max(np.abs(out0 - a)) <= 0.1
        assert np.max(np.abs(out1 - b)) <= 0.1


class TestLedgerAndReport:
    def test_compress_simulate_emit_and_report_reads(
        self, tmp_path, field_file, capsys
    ):
        from repro.obs.ledger import Ledger

        path, _ = field_file
        csz = tmp_path / "out.csz"
        led = tmp_path / "ledger.jsonl"
        assert main([
            "compress", str(path), str(csz), "--rel", "1e-3",
            "--ledger", str(led),
        ]) == 0
        assert main([
            "simulate", str(path), "--rows", "2", "--cols", "2",
            "--strategy", "multi", "--ledger", str(led),
        ]) == 0
        kinds = [r.kind for r in Ledger(led).records()]
        assert kinds == ["compress", "sim"]
        capsys.readouterr()
        assert main(["report", "--ledger", str(led)]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out
        assert "gate: PASS" in out

    def test_report_gate_fails_on_injected_slowdown(
        self, tmp_path, capsys
    ):
        from repro.obs.ledger import Ledger, make_record

        led = Ledger(tmp_path / "ledger.jsonl")
        for speedup in (4.0, 4.1, 3.9, 2.0):  # last run: 2x slower
            led.append(make_record(
                "bench", "demo", {"bench": "demo"},
                values={"demo.fused_compress_speedup": speedup},
            ))
        assert main(["report", "--ledger", led.path]) == 0
        assert "gate: FAIL" in capsys.readouterr().out
        assert main(["report", "--ledger", led.path, "--gate"]) == 1

    def test_report_empty_ledger_passes_gate(self, tmp_path, capsys):
        led = tmp_path / "none.jsonl"
        assert main(["report", "--ledger", str(led), "--gate"]) == 0
        assert "no records" in capsys.readouterr().out
