"""Failure injection: corrupted streams must fail *controlled*.

Every decoder in the library must respond to a corrupted or truncated
stream either by raising an exception from the :mod:`repro.errors`
hierarchy or by returning garbage values — never by escaping with a raw
``IndexError`` / ``ValueError`` / ``ZeroDivisionError`` from deep inside
numpy. Silent low-level crashes are how corrupted archives take down
analysis pipelines.
"""

import numpy as np
import pytest

from repro import CereSZ, ReproError
from repro.baselines import CuSZ, SZ3, SZp
from repro.baselines.huffman import HuffmanCodec


def _fuzz_decode(decode, stream: bytes, rng, *, rounds: int) -> None:
    """Bit-flip, truncate and extend the stream; decode must stay tame."""
    arr = np.frombuffer(stream, dtype=np.uint8).copy()
    for _ in range(rounds):
        corrupted = arr.copy()
        mode = rng.integers(0, 3)
        if mode == 0 and len(corrupted) > 0:  # flip random bytes
            idx = rng.integers(0, len(corrupted), size=max(1, len(corrupted) // 50))
            corrupted[idx] ^= rng.integers(1, 256, size=idx.size).astype(np.uint8)
            payload = corrupted.tobytes()
        elif mode == 1:  # truncate
            cut = int(rng.integers(0, len(corrupted)))
            payload = corrupted.tobytes()[:cut]
        else:  # append garbage
            payload = corrupted.tobytes() + bytes(
                rng.integers(0, 256, size=16).astype(np.uint8)
            )
        try:
            decode(payload)
        except ReproError:
            pass  # controlled failure: exactly what we want
        except Exception as exc:  # pragma: no cover - the assertion target
            pytest.fail(
                f"decoder escaped with {type(exc).__name__}: {exc} "
                f"(mode {mode})"
            )


@pytest.fixture
def fuzz_rng():
    return np.random.default_rng(0xFEED)


@pytest.fixture
def payload(rng):
    return np.cumsum(rng.normal(size=600)).astype(np.float32)


class TestDecoderRobustness:
    def test_ceresz(self, payload, fuzz_rng):
        codec = CereSZ()
        stream = codec.compress(payload, rel=1e-3).stream
        _fuzz_decode(codec.decompress, stream, fuzz_rng, rounds=150)

    def test_szp(self, payload, fuzz_rng):
        codec = SZp()
        stream = codec.compress(payload, rel=1e-3).stream
        _fuzz_decode(codec.decompress, stream, fuzz_rng, rounds=150)

    def test_cusz(self, payload, fuzz_rng):
        codec = CuSZ()
        stream = codec.compress(payload, rel=1e-3).stream
        _fuzz_decode(codec.decompress, stream, fuzz_rng, rounds=100)

    def test_sz3(self, payload, fuzz_rng):
        codec = SZ3()
        stream = codec.compress(payload, rel=1e-3).stream
        _fuzz_decode(codec.decompress, stream, fuzz_rng, rounds=100)

    def test_huffman(self, fuzz_rng, rng):
        codec = HuffmanCodec()
        stream = codec.encode(rng.integers(-20, 21, size=500))
        _fuzz_decode(codec.decode, stream, fuzz_rng, rounds=150)

    def test_framed_stream(self, payload, fuzz_rng):
        from repro.core.streaming import compress_stream, decompress_stream

        data = compress_stream([payload, payload * 2], eps=0.01)
        _fuzz_decode(decompress_stream, data, fuzz_rng, rounds=100)

    def test_ceresz_indexed(self, payload, fuzz_rng):
        """Container v2: corruption of the fl table must also stay tame."""
        codec = CereSZ()
        stream = codec.compress(payload, rel=1e-3, index=True).stream
        _fuzz_decode(codec.decompress, stream, fuzz_rng, rounds=150)

    def test_shard_container(self, payload, fuzz_rng):
        codec = CereSZ()
        stream = codec.compress(payload, rel=1e-3, jobs=2).stream
        _fuzz_decode(codec.decompress, stream, fuzz_rng, rounds=150)

    def test_block_count_guard(self, payload):
        """A v1 stream cut so the record area is too small for its block
        count — but the *total* length is not — must raise, not allocate."""
        from repro.core.format import StreamHeader

        codec = CereSZ()
        stream = codec.compress(payload, rel=1e-3, index=False).stream
        header = codec.describe_stream(stream)
        _, offset = StreamHeader.unpack(stream)
        need = header.num_blocks * header.header_width
        for keep in (need - 1, need // 2, 1):
            with pytest.raises(ReproError):
                codec.decompress(stream[: offset + keep])
