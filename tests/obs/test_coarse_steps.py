"""Every stage name the lowering pass emits maps onto a paper step.

``coarse_step`` buckets sub-stage names into the paper's pipeline steps
(prequant/lorenzo/encode/decode/unlorenzo/dequant); a name falling through
to ``"other"`` would silently vanish from the per-step tables and the
``sim.cycles{step=}`` metric. These tests pin the mapping both statically
(over the declared sub-stage lists, plus the names lower.py emits
directly) and dynamically (over the stage names real simulated runs
record).
"""

import numpy as np
import pytest

from repro.config import BLOCK_SIZE
from repro.core.stages import compression_substages, decompression_substages
from repro.core.wse_compressor import WSECereSZ
from repro.wse.trace import coarse_step

#: Names lower.py emits outside the declared sub-stage lists (the fused
#: zero-block fast path accounts its cost under this name).
EXTRA_LOWERED_NAMES = ["zero_flag"]


class TestStaticCoverage:
    @pytest.mark.parametrize("fl", [0, 1, 8, 32])
    def test_compression_substages_covered(self, fl):
        for stage in compression_substages(fl, BLOCK_SIZE):
            assert coarse_step(stage.name) != "other", stage.name

    @pytest.mark.parametrize("fl", [0, 1, 8, 32])
    def test_decompression_substages_covered(self, fl):
        for stage in decompression_substages(fl, BLOCK_SIZE):
            assert coarse_step(stage.name) != "other", stage.name

    def test_extra_lowered_names_covered(self):
        for name in EXTRA_LOWERED_NAMES:
            assert coarse_step(name) != "other", name

    def test_expected_buckets(self):
        assert coarse_step("multiplication") == "prequant"
        assert coarse_step("addition") == "prequant"
        assert coarse_step("lorenzo") == "lorenzo"
        assert coarse_step("sign") == "encode"
        assert coarse_step("shuffle_bit_7") == "encode"
        assert coarse_step("unshuffle_bit_3") == "decode"
        assert coarse_step("sign_restore") == "decode"
        assert coarse_step("prefix_sum") == "unlorenzo"
        assert coarse_step("dequant_mult") == "dequant"
        assert coarse_step("zero_flag") == "dequant"
        assert coarse_step("no_such_stage") == "other"


class TestDynamicCoverage:
    """Stage names actually recorded by simulated runs all map cleanly."""

    @pytest.mark.parametrize("strategy", ["rows", "pipeline", "multi"])
    def test_compress_run_stage_names(self, strategy):
        rng = np.random.default_rng(5)
        data = np.cumsum(rng.normal(size=BLOCK_SIZE * 8)).astype(np.float32)
        sim = WSECereSZ(
            rows=2, cols=4, strategy=strategy, pipeline_length=2
        )
        res = sim.compress(data, rel=1e-3)
        totals = res.report.trace.stage_cycle_totals()
        assert totals, "run recorded no stage cycles"
        for name in totals:
            assert coarse_step(name) != "other", name

    def test_decompress_run_stage_names(self):
        rng = np.random.default_rng(6)
        data = np.cumsum(rng.normal(size=BLOCK_SIZE * 6)).astype(np.float32)
        sim = WSECereSZ(rows=3, cols=1, strategy="rows")
        stream = sim.compress(data, rel=1e-3).stream
        _, report = sim.decompress_on_wafer(stream)
        totals = report.trace.stage_cycle_totals()
        assert totals, "decompress run recorded no stage cycles"
        for name in totals:
            assert coarse_step(name) != "other", name
