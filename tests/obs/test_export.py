"""Tests for Chrome trace export, validation, heatmaps, and summaries."""

import json

import numpy as np
import pytest

from repro.obs.export import (
    HOST_PID,
    WAFER_PID,
    build_chrome_trace,
    load_chrome_trace,
    occupancy_heatmap,
    relay_heatmap,
    render_heatmap,
    summarize_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.wse.pe import ProcessingElement
from repro.wse.trace import TraceRecorder


def _recorder():
    rec = TraceRecorder()
    for (r, c, comp, rel) in [(0, 0, 100, 0), (0, 1, 0, 40), (1, 0, 60, 10)]:
        pe = ProcessingElement(row=r, col=c)
        pe.compute_cycles = comp
        pe.relay_cycles = rel
        rec.record(pe)
    return rec


def _tracer():
    t = Tracer(level="timeline")
    with t.span("outer"):
        with t.span("inner", detail=1):
            pass
    t.pe_event(0, 0, "taskA", 0, 50)
    t.pe_event(0, 1, "taskB", 10, 20)
    return t


class TestHeatmaps:
    def test_occupancy_grid(self):
        hm = occupancy_heatmap(_recorder())
        assert hm["rows"] == 2 and hm["cols"] == 2
        assert hm["cells"][0][0] == 100
        assert hm["cells"][0][1] == 40
        assert hm["row_totals"] == [140, 70]
        assert hm["col_totals"] == [170, 40]

    def test_relay_grid(self):
        hm = relay_heatmap(_recorder())
        assert hm["cells"][0][1] == 40
        assert hm["cells"][1][0] == 10
        assert hm["cells"][0][0] == 0

    def test_empty_recorder(self):
        hm = occupancy_heatmap(TraceRecorder())
        assert hm["rows"] == 0
        assert "(empty)" in render_heatmap(hm, "t")

    def test_render_scales_to_max(self):
        text = render_heatmap(occupancy_heatmap(_recorder()), "occupancy")
        assert "occupancy (2x2" in text
        # The busiest cell renders as 9.
        assert "|94|" in text.replace(" ", "") or "9" in text


class TestBuildChromeTrace:
    def test_metadata_names_both_clock_domains(self):
        trace = build_chrome_trace(_tracer())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {
            (e["pid"], e["name"]): e["args"]["name"] for e in meta
            if e["name"] == "process_name"
        }
        assert names[(WAFER_PID, "process_name")].startswith("wafer")
        assert names[(HOST_PID, "process_name")].startswith("host")

    def test_pe_events_get_one_thread_per_pe(self):
        trace = build_chrome_trace(_tracer())
        threads = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == WAFER_PID
        }
        assert threads == {"PE(0,0)", "PE(0,1)"}

    def test_host_spans_normalized_to_zero_epoch(self):
        trace = build_chrome_trace(_tracer())
        host = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == HOST_PID
        ]
        assert min(e["ts"] for e in host) == 0

    def test_other_data_carries_heatmaps_and_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1)
        trace = build_chrome_trace(
            _tracer(), recorder=_recorder(), metrics=reg
        )
        other = trace["otherData"]
        assert other["trace_level"] == "timeline"
        assert other["occupancy_heatmap"]["rows"] == 2
        assert other["relay_heatmap"]["rows"] == 2
        assert other["metrics"]["c"]["values"][""] == 1

    def test_empty_trace_is_valid(self):
        trace = build_chrome_trace(None)
        validate_chrome_trace(trace)
        assert all(e["ph"] == "M" for e in trace["traceEvents"])

    def test_built_trace_validates(self):
        validate_chrome_trace(
            build_chrome_trace(_tracer(), recorder=_recorder())
        )


class TestValidator:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_missing_events_list(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_rejects_missing_required_key(self):
        with pytest.raises(ValueError, match="missing required key"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1}]}
            )

    def test_rejects_negative_ts(self):
        with pytest.raises(ValueError, match="invalid ts"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "ts": -1, "dur": 1,
                     "pid": 1, "tid": 0},
                ]}
            )

    def test_rejects_complete_event_without_dur(self):
        with pytest.raises(ValueError, match="without a valid dur"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 0},
                ]}
            )

    def test_rejects_backwards_timestamps_per_track(self):
        events = [
            {"name": "a", "ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 0},
        ]
        with pytest.raises(ValueError, match="monotonicity"):
            validate_chrome_trace({"traceEvents": events})

    def test_distinct_tracks_are_independent(self):
        events = [
            {"name": "a", "ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 1},
        ]
        validate_chrome_trace({"traceEvents": events})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unexpected phase"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
                ]}
            )

    def test_rejects_identical_repeat_on_one_slot(self):
        # The replica-merge double-count bug: the same complete event
        # lands twice on one (pid, tid, ts) slot.
        events = [
            {"name": "compute", "ph": "X", "ts": 10, "dur": 5,
             "pid": 1, "tid": 2},
            {"name": "compute", "ph": "X", "ts": 10, "dur": 5,
             "pid": 1, "tid": 2},
        ]
        with pytest.raises(ValueError, match="identical complete event"):
            validate_chrome_trace({"traceEvents": events})

    def test_rejects_two_nonzero_durations_on_one_slot(self):
        # A PE executes serially: two spans launched from the same
        # instant on one track is double-booking even when they differ.
        events = [
            {"name": "compute", "ph": "X", "ts": 10, "dur": 5,
             "pid": 1, "tid": 2},
            {"name": "send", "ph": "X", "ts": 10, "dur": 3,
             "pid": 1, "tid": 2},
        ]
        with pytest.raises(ValueError, match="nonzero duration"):
            validate_chrome_trace({"traceEvents": events})

    def test_accepts_zero_dur_marker_at_task_start(self):
        # The legitimate simulator pattern: a zero-duration recv marker
        # coincides with the start of the compute span it triggered.
        events = [
            {"name": "recv", "ph": "X", "ts": 10, "dur": 0,
             "pid": 1, "tid": 2},
            {"name": "compute", "ph": "X", "ts": 10, "dur": 24,
             "pid": 1, "tid": 2},
        ]
        validate_chrome_trace({"traceEvents": events})

    def test_rejects_identical_zero_dur_repeat(self):
        # Even zero-duration markers may not repeat identically.
        events = [
            {"name": "recv", "ph": "X", "ts": 10, "dur": 0,
             "pid": 1, "tid": 2},
            {"name": "recv", "ph": "X", "ts": 10, "dur": 0,
             "pid": 1, "tid": 2},
        ]
        with pytest.raises(ValueError, match="identical complete event"):
            validate_chrome_trace({"traceEvents": events})

    def test_duplicate_slot_on_other_track_is_fine(self):
        events = [
            {"name": "compute", "ph": "X", "ts": 10, "dur": 5,
             "pid": 1, "tid": 2},
            {"name": "compute", "ph": "X", "ts": 10, "dur": 5,
             "pid": 1, "tid": 3},
        ]
        validate_chrome_trace({"traceEvents": events})


class TestRoundTrip:
    def test_write_validates_and_loads_back(self, tmp_path):
        path = tmp_path / "trace.json"
        trace = build_chrome_trace(_tracer(), recorder=_recorder())
        write_chrome_trace(str(path), trace)
        with open(path) as fh:
            assert json.load(fh) == trace
        assert load_chrome_trace(str(path)) == trace

    def test_write_refuses_invalid_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        with pytest.raises(ValueError):
            write_chrome_trace(str(path), {"traceEvents": [{}]})
        assert not path.exists()


class TestSummary:
    def test_summary_sections(self):
        reg = MetricsRegistry()
        trace = build_chrome_trace(
            _tracer(), recorder=_recorder(), metrics=reg
        )
        text = summarize_trace(trace, top=5)
        assert "top spans" in text
        assert "outer" in text
        assert "busiest PEs" in text
        assert "PE(0,0)" in text
        assert "relay congestion hotspots" in text
        assert "PE(0,1): 40 relay cycles" in text

    def test_summary_of_span_only_trace(self):
        t = Tracer(level="spans")
        with t.span("only"):
            pass
        text = summarize_trace(build_chrome_trace(t))
        assert "only" in text
        assert "no timeline events" in text


class TestEndToEndFig7Rows:
    def test_fig7_rows_run_produces_valid_chrome_trace(self):
        """The acceptance-criteria path: a fig7-style rows-strategy run
        traced at timeline level exports a loadable Chrome trace."""
        from repro.core.wse_compressor import WSECereSZ

        rng = np.random.default_rng(7)
        data = np.cumsum(rng.normal(size=32 * 12)).astype(np.float32)
        sim = WSECereSZ(
            rows=4, cols=1, strategy="rows",
            trace_level="timeline", collect_metrics=True,
        )
        res = sim.compress(data, rel=1e-3)
        trace = build_chrome_trace(
            res.tracer, recorder=res.report.trace, metrics=res.metrics
        )
        validate_chrome_trace(trace)
        wafer = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == WAFER_PID
        ]
        assert wafer, "timeline capture produced no PE events"
        assert trace["otherData"]["metrics"]["sim.pe.tasks"]
