"""Tests for the metrics registry: cells, snapshots, and the merge policy."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter(name="c")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labels_are_order_insensitive(self):
        c = Counter(name="c")
        c.inc(1, a="x", b="y")
        c.inc(2, b="y", a="x")
        assert c.value(a="x", b="y") == 3

    def test_total_sums_all_cells(self):
        c = Counter(name="c")
        c.inc(1, outcome="hit")
        c.inc(2, outcome="miss")
        assert c.total() == 3

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter(name="c").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge(name="g")
        g.set(5)
        g.set(2)
        assert g.value() == 2

    def test_set_max_keeps_high_water_mark(self):
        g = Gauge(name="g")
        g.set_max(5)
        g.set_max(2)
        g.set_max(9)
        assert g.value() == 9


class TestHistogram:
    def test_observe_tracks_count_sum_min_max(self):
        h = Histogram(name="h")
        h.observe(3)
        h.observe(100)
        cell = h.cell()
        assert cell["count"] == 2
        assert cell["sum"] == 103
        assert cell["min"] == 3
        assert cell["max"] == 100

    def test_bucket_assignment(self):
        h = Histogram(name="h", buckets=(10.0, 100.0))
        h.observe(5)
        h.observe(50)
        h.observe(500)  # overflow bucket
        assert h.cell()["bucket_counts"] == [1, 1, 1]


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_iteration_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert [m.name for m in reg] == ["a", "b"]

    def test_snapshot_is_json_able(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2, step="encode")
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(7)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["c"]["values"]["step=encode"] == 2

    def test_render_mentions_every_cell(self):
        reg = MetricsRegistry()
        reg.counter("sim.route_cache").inc(3, outcome="hit")
        reg.histogram("h").observe(1)
        text = reg.render()
        assert "sim.route_cache{outcome=hit}: 3" in text
        assert "count 1" in text


class TestMergePolicy:
    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2, k="v")
        b.counter("c").inc(5, k="v")
        a.merge(b.snapshot())
        assert a.counter("c").value(k="v") == 7

    def test_gauges_take_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(9)
        b.gauge("g").set(4)
        a.merge(b.snapshot())
        assert a.gauge("g").value() == 9
        b2 = MetricsRegistry()
        b2.gauge("g").set(20)
        a.merge(b2.snapshot())
        assert a.gauge("g").value() == 20

    def test_histograms_add_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(10.0,)).observe(5)
        b.histogram("h", buckets=(10.0,)).observe(50)
        a.merge(b.snapshot())
        cell = a.histogram("h").cell()
        assert cell["count"] == 2
        assert cell["bucket_counts"] == [1, 1]
        assert cell["min"] == 5
        assert cell["max"] == 50

    def test_histogram_bucket_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(10.0,)).observe(1)
        b.histogram("h", buckets=(99.0,)).observe(1)
        with pytest.raises(ValueError, match="bucket bounds"):
            a.merge(b.snapshot())

    def test_merge_into_empty_registry(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").set(2)
        b.histogram("h").observe(1)
        a.merge(b.snapshot())
        assert a.counter("c").value() == 3
        assert a.gauge("g").value() == 2
        assert a.histogram("h").cell()["count"] == 1

    def test_counter_totals(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1, k="a")
        reg.counter("c").inc(2, k="b")
        reg.gauge("g").set(99)
        totals = reg.counter_totals()
        assert totals == {"c": 3}


class TestCollectors:
    def test_collect_run_metrics_from_simulated_run(self):
        """The collectors publish a real run's raw cells under stable names."""
        import numpy as np

        from repro.core.plan import plan_multi_pipeline
        from repro.core.simulate import simulate_plan
        from repro.obs.metrics import MetricsRegistry

        rng = np.random.default_rng(0)
        blocks = rng.normal(size=(6, 32)).cumsum(axis=1)
        plan = plan_multi_pipeline(blocks, 0.01, rows=2, cols=3)
        reg = MetricsRegistry()
        run = simulate_plan(plan, metrics=reg)
        assert run.metrics is reg
        assert reg.counter("sim.engine.events").total() == (
            run.report.events_processed
        )
        assert reg.counter("sim.pe.tasks").total() == run.report.tasks_run
        assert reg.counter("sim.route_cache").value(outcome="hit") > 0
        assert reg.gauge("sim.engine.queue_depth.max").value() > 0
        assert reg.counter("sim.cycles").total() == pytest.approx(
            sum(run.report.trace.step_cycle_totals().values())
        )
        busy = reg.histogram("sim.pe.busy_cycles").cell()
        assert busy["count"] == len(run.report.trace.traces)
