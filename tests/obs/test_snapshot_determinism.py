"""MetricsRegistry snapshots are deterministic across execution modes.

The ledger stores full metrics snapshots; cross-run comparison is only
meaningful if the snapshot is a function of the workload, not of how the
simulator happened to execute it. Two equivalences are pinned here:

* serial vs row-parallel (``jobs=4``) — identical snapshots except the
  documented ``sim.engine.queue_depth.max`` gauge, whose event-heap
  depth depends on partition interleaving (see ``simulate_plan``'s
  docstring);
* full event vs hybrid simulation on a row-homogeneous workload — the
  hybrid path synthesizes member-row metrics analytically and must land
  on the same totals. The same gauge is exempt for the same reason: the
  hybrid engine only event-simulates the representative row, so its
  heap never holds the other rows' events.

"Byte-identical" is asserted on the canonical (sorted, compact) JSON
serialization — the same form the ledger writes.
"""

import numpy as np

from repro.core.plan import plan_row_parallel, tile_rows
from repro.core.simulate import simulate_plan
from repro.obs.ledger import canonical_json
from repro.obs.metrics import MetricsRegistry

#: Heap depth is concurrency-dependent by design; everything else must
#: match exactly across jobs counts.
QUEUE_DEPTH = "sim.engine.queue_depth.max"


def _blocks(rows=4, per_row=8, seed=5):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows * per_row, 32)).cumsum(axis=1)


def _homogeneous_blocks(rows=4, per_row=8, seed=6):
    rng = np.random.default_rng(seed)
    row = rng.normal(size=(per_row, 32)).cumsum(axis=1)
    return tile_rows(row, rows, "rows")


def _snapshot(plan_blocks, **kw):
    plan = plan_row_parallel(plan_blocks, 1e-3, rows=4, cols=1)
    reg = MetricsRegistry()
    simulate_plan(plan, metrics=reg, **kw)
    return reg.snapshot()


def _without(snapshot: dict, name: str) -> dict:
    return {k: v for k, v in snapshot.items() if k != name}


class TestSerialVsParallel:
    def test_snapshots_byte_identical_modulo_queue_depth(self):
        blocks = _blocks()
        serial = _snapshot(blocks, jobs=1)
        parallel = _snapshot(blocks, jobs=4)
        assert canonical_json(_without(serial, QUEUE_DEPTH)) == (
            canonical_json(_without(parallel, QUEUE_DEPTH))
        )

    def test_serial_reruns_fully_identical(self):
        blocks = _blocks()
        assert canonical_json(_snapshot(blocks, jobs=1)) == (
            canonical_json(_snapshot(blocks, jobs=1))
        )


class TestEventVsHybrid:
    def test_snapshots_byte_identical_modulo_queue_depth(self):
        blocks = _homogeneous_blocks()
        event = _snapshot(blocks, mode="event")
        hybrid = _snapshot(blocks, mode="hybrid")
        assert canonical_json(_without(event, QUEUE_DEPTH)) == (
            canonical_json(_without(hybrid, QUEUE_DEPTH))
        )

    def test_snapshot_is_sorted_in_canonical_form(self):
        snap = _snapshot(_blocks())
        text = canonical_json(snap)
        assert text == canonical_json(
            {k: snap[k] for k in sorted(snap, reverse=True)}
        )
