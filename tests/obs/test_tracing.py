"""Tests for the span/event tracer."""

import pickle

import pytest

from repro.obs.tracing import NULL_TRACER, TRACE_LEVELS, Tracer


class TestLevels:
    def test_known_levels(self):
        assert TRACE_LEVELS == ("off", "spans", "timeline")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="trace level"):
            Tracer(level="verbose")

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError, match="sample_every"):
            Tracer(level="timeline", sample_every=0)

    def test_predicates(self):
        assert not Tracer(level="off").enabled
        assert Tracer(level="spans").enabled
        assert not Tracer(level="spans").records_timeline
        assert Tracer(level="timeline").records_timeline


class TestSpans:
    def test_span_records_name_and_args(self):
        t = Tracer(level="spans")
        with t.span("work", rows=3):
            pass
        (s,) = t.spans
        assert s.name == "work"
        assert s.args == {"rows": 3}
        assert s.dur_us >= 0
        assert s.depth == 0

    def test_nesting_depth(self):
        t = Tracer(level="spans")
        with t.span("outer"):
            with t.span("inner"):
                pass
        by_name = {s.name: s for s in t.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # Inner closes first, so it is recorded first.
        assert [s.name for s in t.spans] == ["inner", "outer"]

    def test_span_survives_exception(self):
        """Spans close in ``finally``: a raise inside the body still yields
        a record with correct nesting, and the depth counter is restored."""
        t = Tracer(level="spans")
        with pytest.raises(RuntimeError):
            with t.span("outer"):
                with t.span("inner"):
                    raise RuntimeError("boom")
        assert [s.name for s in t.spans] == ["inner", "outer"]
        assert t.spans[0].depth == 1
        assert t.spans[1].depth == 0
        # Depth restored: a fresh span is top-level again.
        with t.span("after"):
            pass
        assert t.spans[-1].depth == 0

    def test_exception_span_has_duration(self):
        t = Tracer(level="spans")
        with pytest.raises(ValueError):
            with t.span("failing"):
                raise ValueError()
        assert t.spans[0].dur_us >= 0
        assert t.spans[0].start_us > 0

    def test_off_level_records_nothing(self):
        t = Tracer(level="off")
        with t.span("work"):
            t.pe_event(0, 0, "task", 0, 5)
        assert t.spans == []
        assert t.pe_events == []

    def test_null_tracer_is_off(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything"):
            pass
        assert NULL_TRACER.spans == []


class TestPEEvents:
    def test_spans_level_skips_timeline(self):
        t = Tracer(level="spans")
        t.pe_event(0, 0, "task", 0, 10)
        assert t.pe_events == []

    def test_timeline_records_events(self):
        t = Tracer(level="timeline")
        t.pe_event(1, 2, "encode", 100, 50)
        (e,) = t.pe_events
        assert (e.row, e.col, e.name) == (1, 2, "encode")
        assert (e.start_cycles, e.dur_cycles) == (100, 50)

    def test_sampling_stride_is_per_pe_and_deterministic(self):
        t = Tracer(level="timeline", sample_every=3)
        for i in range(7):
            t.pe_event(0, 0, f"t{i}", i, 1)
        for i in range(2):
            t.pe_event(1, 0, f"u{i}", i, 1)
        # Keeps the 0th, 3rd, 6th on PE(0,0); the stride on PE(1,0) is
        # independent, so its 0th event is kept too.
        names = [e.name for e in t.pe_events]
        assert names == ["t0", "t3", "t6", "u0"]

    def test_two_runs_sample_identically(self):
        def capture():
            t = Tracer(level="timeline", sample_every=2)
            for i in range(5):
                t.pe_event(0, 0, f"t{i}", i, 1)
            return [e.name for e in t.pe_events]

        assert capture() == capture()


class TestMergePartition:
    def test_merge_filters_foreign_rows_and_retags_spans(self):
        parent = Tracer(level="timeline")
        worker = Tracer(level="timeline")
        worker.pe_event(0, 0, "mine", 0, 1)
        worker.pe_event(2, 0, "foreign", 0, 1)
        with worker.span("engine.run"):
            pass
        parent.merge_partition((0, 1), worker, tid=3)
        assert [e.name for e in parent.pe_events] == ["mine"]
        assert parent.spans[0].tid == 3
        assert parent.spans[0].name == "engine.run"

    def test_merge_preserves_span_timing(self):
        parent = Tracer(level="spans")
        worker = Tracer(level="spans")
        with worker.span("w"):
            pass
        parent.merge_partition((0,), worker, tid=1)
        assert parent.spans[0].start_us == worker.spans[0].start_us
        assert parent.spans[0].dur_us == worker.spans[0].dur_us


class TestMisc:
    def test_span_totals(self):
        t = Tracer(level="spans")
        with t.span("a"):
            pass
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        totals = t.span_totals()
        assert totals["a"][0] == 2
        assert totals["b"][0] == 1
        assert totals["a"][1] >= 0

    def test_tracer_is_picklable(self):
        """Workers ship their tracer back across the process boundary."""
        t = Tracer(level="timeline", sample_every=2)
        t.pe_event(0, 0, "task", 1, 2)
        with t.span("s"):
            pass
        back = pickle.loads(pickle.dumps(t))
        assert back.level == "timeline"
        assert back.sample_every == 2
        assert [e.name for e in back.pe_events] == ["task"]
        assert [s.name for s in back.spans] == ["s"]


class TestLazyAllocation:
    """Small-run fixed costs: spans-level tracers must not allocate
    timeline state, and the cached level predicates must agree with the
    level string (regression for the 18% obs overhead at rows=4)."""

    def test_spans_tracer_allocates_no_timeline_state(self):
        t = Tracer(level="spans")
        with t.span("work"):
            pass
        t.pe_event(0, 0, 0, "recv", 1)  # dropped: not timeline level
        assert t._pe_events is None
        assert t._seen is None

    def test_off_tracer_allocates_no_timeline_state(self):
        t = Tracer(level="off")
        with t.span("work"):
            pass
        assert t._pe_events is None

    def test_pe_events_property_still_reads_as_list(self):
        t = Tracer(level="spans")
        assert t.pe_events == []
        t2 = Tracer(level="timeline")
        t2.pe_event(0, 0, 0, "recv", 1)
        assert len(t2.pe_events) == 1

    def test_cached_predicates_match_level(self):
        for level in ("off", "spans", "timeline"):
            t = Tracer(level=level)
            assert t.enabled == (level != "off")
            assert t.records_timeline == (level == "timeline")

    def test_merge_partition_with_lazy_parts(self):
        main = Tracer(level="timeline")
        part = Tracer(level="timeline")
        part.pe_event(0, 0, 0, "recv", 1)
        lazy = Tracer(level="timeline")  # never touched: stays unallocated
        main.merge_partition((0, 1, 2, 3), part)
        main.merge_partition((0, 1, 2, 3), lazy)
        assert len(main.pe_events) == 1

    def test_tracer_still_picklable_when_lazy(self):
        import pickle

        t = Tracer(level="spans")
        clone = pickle.loads(pickle.dumps(t))
        assert clone._pe_events is None
        assert clone.enabled
