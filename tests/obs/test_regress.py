"""Regression observatory: statistics, policies, adapters, and the gate.

The acceptance story lives in :class:`TestGateCatchesInjectedSlowdown`:
a ledger of healthy same-fingerprint runs passes ``run_report``'s gate,
and the same ledger with a synthetic 2x slowdown appended fails it.
"""

import json

import pytest

from repro.errors import LedgerError
from repro.obs.ledger import Ledger, make_record
from repro.obs.regress import (
    DETERMINISTIC_THRESHOLD,
    TIMING_HISTORY_THRESHOLD,
    compare_to_baseline,
    compare_to_history,
    group_by_fingerprint,
    headline_values,
    load_baseline,
    metric_policy,
    render_comparison,
    run_report,
    summarize,
)


class TestSummarize:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="zero samples"):
            summarize([])

    def test_single_sample_collapses_to_point(self):
        s = summarize([3.0])
        assert (s.n, s.median, s.iqr) == (1, 3.0, 0.0)
        assert s.ci_low == s.ci_high == 3.0

    def test_median_and_iqr(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.median == 3.0
        assert s.iqr == 2.0
        assert s.ci_low <= s.median <= s.ci_high

    def test_bootstrap_is_seeded(self):
        a = summarize([1.0, 1.1, 0.9, 1.05, 0.95])
        b = summarize([1.0, 1.1, 0.9, 1.05, 0.95])
        assert (a.ci_low, a.ci_high) == (b.ci_low, b.ci_high)


class TestMetricPolicy:
    @pytest.mark.parametrize(
        "name,direction,kind",
        [
            ("wall_s", "lower", "timing"),
            ("wafer.wall_s", "lower", "timing"),
            ("makespan_cycles", "lower", "deterministic"),
            ("compressed_bytes", "lower", "deterministic"),
            ("fig7_rows_speedup", "higher", "timing"),
            ("smooth.fused_compress_speedup", "higher", "timing"),
            ("smooth.rtm_small.ratio", "higher", "deterministic"),
            ("obs1.holds_ratio", "higher", "deterministic"),
            ("max_error", "lower", "deterministic"),
            ("throughput_gbs", "higher", "timing"),
            ("novel_metric", "higher", "timing"),
        ],
    )
    def test_classification(self, name, direction, kind):
        policy = metric_policy(name)
        assert (policy.direction, policy.kind) == (direction, kind)

    def test_overhead_uses_absolute_tolerance(self):
        policy = metric_policy("max_obs_overhead")
        assert policy.kind == "overhead"
        assert policy.abs_tol is not None


class TestHeadlineAdapters:
    def test_host_throughput(self):
        payload = {
            "benchmark": "host_throughput",
            "profiles": {
                "smooth": {
                    "v2_over_v1_decode_speedup": 3.5,
                    "fused_compress_speedup": 4.0,
                    "cases": [{"name": "rtm_small", "ratio": 25.0}],
                }
            },
        }
        vals = headline_values(payload)
        assert vals["smooth.v2_over_v1_decode_speedup"] == 3.5
        assert vals["smooth.rtm_small.ratio"] == 25.0

    def test_sim_speed(self):
        payload = {
            "benchmark": "sim_speed",
            "fig7_rows_speedup": 8.0,
            "max_obs_overhead": 0.02,
            "configs": [
                {
                    "strategy": "rows", "rows": 4, "cols": 1,
                    "optimized": {"makespan_cycles": 1000.0},
                    "speedup_optimized": 8.0,
                }
            ],
            "hybrid_configs": [
                {
                    "strategy": "rows", "rows": 4, "cols": 1,
                    "speedup_hybrid": 2.5, "makespan_cycles": 1000.0,
                }
            ],
            "wafer": {"wall_s": 4.2, "makespan_cycles": 5e6},
        }
        vals = headline_values(payload)
        assert vals["rows4x1.makespan_cycles"] == 1000.0
        assert vals["rows4x1.hybrid_speedup"] == 2.5
        assert vals["wafer.wall_s"] == 4.2

    def test_rate_distortion(self):
        payload = {
            "benchmark": "rate_distortion_predictors",
            "rows": [
                {"field": "smooth2d", "predictor": "lorenzo2d",
                 "eps": 1e-3, "ratio": 30.0},
            ],
        }
        vals = headline_values(payload)
        assert vals == {"smooth2d.lorenzo2d.eps0.001.ratio": 30.0}

    def test_observations(self):
        payload = {
            "benchmark": "observations",
            "verdicts": [
                {"observation": 1, "holds": True},
                {"observation": 2, "holds": False},
            ],
        }
        vals = headline_values(payload)
        assert vals == {"obs1.holds_ratio": 1.0, "obs2.holds_ratio": 0.0}

    def test_run_record_values_pass_through(self):
        vals = headline_values({"values": {"x": 1}})
        assert vals == {"x": 1.0}

    def test_unknown_payload_raises(self):
        with pytest.raises(LedgerError, match="unknown payload"):
            headline_values({"benchmark": "mystery"})

    def test_load_baseline_from_committed_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({
            "benchmark": "observations",
            "verdicts": [{"observation": 1, "holds": True}],
        }))
        assert load_baseline(path) == {"obs1.holds_ratio": 1.0}

    def test_load_baseline_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{nope")
        with pytest.raises(LedgerError, match="not valid JSON"):
            load_baseline(path)


class TestCompare:
    def test_baseline_judges_only_the_intersection(self):
        comp = compare_to_baseline(
            {"a.ratio": 10.0, "only_current": 1.0},
            {"a.ratio": 10.0, "only_base": 2.0},
        )
        assert [f.metric for f in comp.findings] == ["a.ratio"]
        assert comp.ok

    def test_deterministic_drop_beyond_threshold_regresses(self):
        drop = 1.0 - (DETERMINISTIC_THRESHOLD + 0.05)
        comp = compare_to_baseline(
            {"a.ratio": 10.0 * drop}, {"a.ratio": 10.0}
        )
        assert not comp.ok

    def test_improvement_never_regresses(self):
        comp = compare_to_baseline({"a.ratio": 20.0}, {"a.ratio": 10.0})
        assert comp.ok
        # Lower-better improves downward.
        comp = compare_to_baseline(
            {"makespan_cycles": 500.0}, {"makespan_cycles": 1000.0}
        )
        assert comp.ok

    def test_lower_better_regresses_upward(self):
        comp = compare_to_baseline(
            {"makespan_cycles": 2000.0}, {"makespan_cycles": 1000.0}
        )
        assert not comp.ok

    def test_overhead_absolute_tolerance(self):
        ok = compare_to_baseline(
            {"max_obs_overhead": 0.08}, {"max_obs_overhead": 0.01}
        )
        assert ok.ok  # +0.07 within the 0.10 absolute tolerance
        bad = compare_to_baseline(
            {"max_obs_overhead": 0.15}, {"max_obs_overhead": 0.01}
        )
        assert not bad.ok

    def test_zero_reference_deterministic_requires_exact_match(self):
        assert compare_to_baseline({"n_bytes": 0.0}, {"n_bytes": 0.0}).ok
        assert not compare_to_baseline({"n_bytes": 1.0}, {"n_bytes": 0.0}).ok

    def test_history_needs_two_records(self):
        rec = make_record("bench", "x", {}, values={"v": 1.0})
        with pytest.raises(ValueError, match=">= 2"):
            compare_to_history([rec])

    def test_history_reference_is_prior_median(self):
        group = [
            make_record("bench", "x", {"k": 1}, values={"wall_s": w})
            for w in (1.0, 1.1, 0.9, 1.05)
        ]
        comp = compare_to_history(group)
        (finding,) = comp.findings
        assert finding.reference == 1.0  # median of (1.0, 1.1, 0.9)
        assert finding.summary.n == 3
        assert comp.ok

    def test_render_mentions_counts_and_regressions(self):
        comp = compare_to_baseline({"a.ratio": 1.0}, {"a.ratio": 10.0})
        text = render_comparison(comp)
        assert "REGRESSED" in text
        assert "1 regression(s)" in text
        ok_text = render_comparison(
            compare_to_baseline({"a.ratio": 10.0}, {"a.ratio": 10.0})
        )
        assert "REGRESSED" not in ok_text

    def test_group_by_fingerprint(self):
        a1 = make_record("bench", "x", {"k": 1})
        a2 = make_record("bench", "x", {"k": 1})
        b = make_record("bench", "x", {"k": 2})
        groups = group_by_fingerprint([a1, a2, b])
        assert sorted(len(g) for g in groups.values()) == [1, 2]


class TestGateCatchesInjectedSlowdown:
    """The acceptance criterion: a synthetic 2x slowdown in the newest
    same-fingerprint record must fail ``ceresz report --gate``; the
    healthy history alone must pass it."""

    CONFIG = {"bench": "demo", "eps": 1e-3, "jobs": 1}

    def _healthy(self, path, n=4):
        led = Ledger(path)
        for i in range(n):
            led.append(make_record(
                "bench", "demo", self.CONFIG,
                timings={"wall_s": 1.0 + 0.02 * i},
                values={
                    "demo.fused_compress_speedup": 4.0 + 0.05 * i,
                    "demo.rtm.ratio": 25.0,
                },
            ))
        return led

    def test_healthy_history_passes(self, tmp_path):
        led = self._healthy(tmp_path / "led.jsonl")
        text, ok = run_report(led)
        assert ok
        assert "gate: PASS" in text

    def test_injected_2x_slowdown_fails(self, tmp_path):
        led = self._healthy(tmp_path / "led.jsonl")
        # A 2x slowdown halves every timing-derived speedup: a -50%
        # effect, well past the -35% history threshold.
        led.append(make_record(
            "bench", "demo", self.CONFIG,
            timings={"wall_s": 2.0},
            values={
                "demo.fused_compress_speedup": 2.0,
                "demo.rtm.ratio": 25.0,
            },
        ))
        assert 0.5 > TIMING_HISTORY_THRESHOLD  # the demo's margin
        text, ok = run_report(led)
        assert not ok
        assert "gate: FAIL" in text
        assert "demo.fused_compress_speedup" in text

    def test_slowdown_in_a_different_config_does_not_cross_gate(
        self, tmp_path
    ):
        led = self._healthy(tmp_path / "led.jsonl")
        # Same bench, different resolved config: groups are disjoint, a
        # single record has no history, so nothing regresses.
        led.append(make_record(
            "bench", "demo", dict(self.CONFIG, jobs=4),
            values={"demo.fused_compress_speedup": 2.0},
        ))
        _, ok = run_report(led)
        assert ok

    def test_empty_ledger_passes(self, tmp_path):
        text, ok = run_report(Ledger(tmp_path / "none.jsonl"))
        assert ok
        assert "no records" in text

    def test_baseline_file_comparison(self, tmp_path):
        led = Ledger(tmp_path / "led.jsonl")
        led.append(make_record(
            "bench", "observations", {"bench": "observations"},
            values={"obs1.holds_ratio": 0.0},
        ))
        base = tmp_path / "BENCH_observations.json"
        base.write_text(json.dumps({
            "benchmark": "observations",
            "verdicts": [{"observation": 1, "holds": True}],
        }))
        text, ok = run_report(led, baselines=[str(base)])
        assert not ok
        assert "obs1.holds_ratio" in text

    def test_baseline_without_matching_record_is_reported_not_fatal(
        self, tmp_path
    ):
        led = Ledger(tmp_path / "led.jsonl")
        led.append(make_record("bench", "other", {}, values={"v": 1.0}))
        base = tmp_path / "BENCH_observations.json"
        base.write_text(json.dumps({
            "benchmark": "observations",
            "verdicts": [{"observation": 1, "holds": True}],
        }))
        text, ok = run_report(led, baselines=[str(base)])
        assert ok
        assert "no matching ledger record" in text
