"""Run ledger: records, fingerprints, schema contract, opt-in emission."""

import json

import numpy as np
import pytest

from repro.core.compressor import CereSZ
from repro.errors import LedgerError
from repro.obs.ledger import (
    SCHEMA_VERSION,
    Ledger,
    RunRecord,
    canonical_json,
    capture_environment,
    config_fingerprint,
    emit,
    make_record,
    resolve_ledger,
)
from repro.obs.metrics import MetricsRegistry


class TestFingerprint:
    def test_key_order_is_irrelevant(self):
        a = {"eps": 1e-3, "predictor": "lorenzo1d", "jobs": 1}
        b = {"jobs": 1, "predictor": "lorenzo1d", "eps": 1e-3}
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_float_spelling_is_irrelevant(self):
        assert config_fingerprint({"eps": 1e-3}) == config_fingerprint(
            {"eps": 0.001}
        )

    def test_value_changes_change_the_fingerprint(self):
        base = config_fingerprint({"eps": 1e-3, "jobs": 1})
        assert config_fingerprint({"eps": 1e-4, "jobs": 1}) != base
        assert config_fingerprint({"eps": 1e-3, "jobs": 4}) != base

    def test_nested_dicts_are_canonicalized(self):
        a = canonical_json({"b": {"y": 2, "x": 1}, "a": 0})
        assert a == '{"a":0,"b":{"x":1,"y":2}}'


class TestEnvironment:
    def test_capture_has_the_provenance_fields(self):
        env = capture_environment()
        for key in (
            "git_sha", "python", "numpy", "platform",
            "machine", "cpu_count", "hostname",
        ):
            assert key in env, key
        assert env["cpu_count"] >= 1


class TestRunRecord:
    def _record(self):
        return make_record(
            "bench",
            "demo",
            {"eps": 1e-3},
            timings={"wall_s": 0.25},
            values={"ratio": 10.0},
            env={"git_sha": "deadbeef"},
            timestamp=1234.5,
        )

    def test_round_trips_through_json(self):
        rec = self._record()
        back = RunRecord.from_json(rec.to_json())
        assert back == rec
        assert back.to_json() == rec.to_json()

    def test_schema_version_is_stamped(self):
        assert self._record().schema == SCHEMA_VERSION

    def test_rejects_newer_schema(self):
        data = json.loads(self._record().to_json())
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(LedgerError, match="newer than this reader"):
            RunRecord.from_dict(data)

    def test_accepts_same_or_older_schema(self):
        data = json.loads(self._record().to_json())
        RunRecord.from_dict(dict(data, schema=SCHEMA_VERSION))

    def test_rejects_missing_schema(self):
        data = json.loads(self._record().to_json())
        del data["schema"]
        with pytest.raises(LedgerError, match="schema"):
            RunRecord.from_dict(data)

    def test_rejects_missing_required_fields(self):
        data = json.loads(self._record().to_json())
        del data["fingerprint"]
        with pytest.raises(LedgerError, match="fingerprint"):
            RunRecord.from_dict(data)

    def test_unknown_fields_are_ignored(self):
        # An older reader meeting a same-version record with extra keys
        # (an additive change that did not bump the schema) must not die.
        data = json.loads(self._record().to_json())
        data["novel_field"] = {"anything": 1}
        rec = RunRecord.from_dict(data)
        assert rec.name == "demo"

    def test_metrics_registry_is_snapshotted(self):
        reg = MetricsRegistry()
        reg.counter("test.counter").inc(3)
        rec = make_record("sim", "x", {}, metrics=reg)
        assert rec.metrics == reg.snapshot()


class TestLedgerFile:
    def test_append_then_read_back(self, tmp_path):
        led = Ledger(tmp_path / "led.jsonl")
        r1 = make_record("bench", "a", {"k": 1}, values={"v": 1.0})
        r2 = make_record("bench", "a", {"k": 1}, values={"v": 2.0})
        led.append(r1)
        led.append(r2)
        assert led.records() == [r1, r2]
        assert len(led) == 2

    def test_append_creates_parent_dirs(self, tmp_path):
        led = Ledger(tmp_path / "deep" / "down" / "led.jsonl")
        led.append(make_record("bench", "a", {}))
        assert len(led.records()) == 1

    def test_missing_file_reads_as_empty(self, tmp_path):
        assert Ledger(tmp_path / "nope.jsonl").records() == []

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "led.jsonl"
        led = Ledger(path)
        led.append(make_record("bench", "a", {}))
        with open(path, "a") as fh:
            fh.write("\n\n")
        led.append(make_record("bench", "b", {}))
        assert [r.name for r in led.records()] == ["a", "b"]

    def test_parse_error_names_path_and_line(self, tmp_path):
        path = tmp_path / "led.jsonl"
        led = Ledger(path)
        led.append(make_record("bench", "a", {}))
        with open(path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(LedgerError, match=r"led\.jsonl:2"):
            led.records()

    def test_env_var_overrides_default_path(self, tmp_path, monkeypatch):
        target = tmp_path / "from_env.jsonl"
        monkeypatch.setenv("CERESZ_LEDGER", str(target))
        assert Ledger().path == str(target)


class TestResolveLedger:
    def test_none_and_false_disable(self):
        assert resolve_ledger(None) is None
        assert resolve_ledger(False) is None

    def test_true_selects_default_path(self, monkeypatch):
        monkeypatch.delenv("CERESZ_LEDGER", raising=False)
        led = resolve_ledger(True)
        assert led is not None and led.path.endswith("ledger.jsonl")

    def test_path_and_instance_pass_through(self, tmp_path):
        led = resolve_ledger(tmp_path / "x.jsonl")
        assert isinstance(led, Ledger)
        assert resolve_ledger(led) is led

    def test_emit_is_a_noop_when_off(self):
        assert emit(None, "bench", "x", {}) is None


class TestCompressorIntegration:
    def test_compress_decompress_emit_records(self, tmp_path):
        path = tmp_path / "led.jsonl"
        rng = np.random.default_rng(3)
        data = rng.normal(size=2048).astype(np.float32)
        codec = CereSZ()
        result = codec.compress(data, eps=1e-3, ledger=path)
        back = codec.decompress(result.stream, ledger=path)
        np.testing.assert_allclose(back, data, atol=1e-3)
        records = Ledger(path).records()
        assert [r.kind for r in records] == ["compress", "decompress"]
        comp, decomp = records
        assert comp.name == "ceresz.compress"
        assert comp.config["eps"] == 1e-3
        assert comp.values["compression_ratio"] == pytest.approx(result.ratio)
        assert comp.timings["wall_s"] > 0
        assert decomp.values["output_bytes"] == float(back.nbytes)

    def test_ledger_does_not_change_the_stream(self, tmp_path):
        rng = np.random.default_rng(4)
        data = rng.normal(size=1024).astype(np.float32)
        codec = CereSZ()
        plain = codec.compress(data, eps=1e-3)
        ledgered = codec.compress(
            data, eps=1e-3, ledger=tmp_path / "led.jsonl"
        )
        assert plain.stream == ledgered.stream
