"""Five-compressor shootout on one scientific field.

Compresses a NYX velocity field with every codec in the study and reports
the three axes of the paper's evaluation: ratio (measured), quality
(measured PSNR/SSIM), and throughput (wafer model for CereSZ, calibrated
device models for the baselines). Ends with a rate-distortion comparison
(paper Section 5.4).

Run:  python examples/compressor_shootout.py
"""

from repro import WaferConfig
from repro.baselines.base import get_compressor
from repro.core.quantize import relative_to_absolute
from repro.datasets import generate_field
from repro.metrics import psnr, rate_distortion_curve, ssim
from repro.perf import device_throughput, measure_workload, wafer_throughput


def main() -> None:
    field = generate_field("NYX", 3)  # velocity_x
    rel = 1e-3
    wafer = WaferConfig(rows=512, cols=512)

    eps = relative_to_absolute(field, rel)
    workload = measure_workload(field, eps)

    print(f"NYX velocity_x {field.shape}, REL {rel:g}\n")
    print(f"{'codec':<8} | {'device':<10} | {'ratio':>7} | {'PSNR dB':>8} "
          f"| {'SSIM':>7} | {'GB/s (model)':>12}")
    print("-" * 68)
    for name in ("CereSZ", "cuSZp", "cuSZ", "SZp", "SZ"):
        codec = get_compressor(name)
        result = codec.compress(field, rel=rel)
        restored = codec.decompress(result.stream)
        if name == "CereSZ":
            gbs = wafer_throughput(workload, wafer).throughput_gbs
        else:
            gbs = device_throughput(
                name, "compress", result.zero_block_fraction
            )
        print(
            f"{name:<8} | {codec.device:<10} | {result.ratio:>7.2f} "
            f"| {psnr(field, restored):>8.2f} "
            f"| {ssim(field, restored):>7.4f} | {gbs:>12.2f}"
        )

    print("\nrate-distortion (CereSZ vs cuSZp — identical PSNR column,")
    print("cuSZp at a lower bit rate thanks to its 1-byte headers):")
    bounds = (1e-2, 1e-3, 1e-4)
    ours = rate_distortion_curve(get_compressor("CereSZ"), field, bounds)
    theirs = rate_distortion_curve(get_compressor("cuSZp"), field, bounds)
    print(f"{'REL':>6} | {'CereSZ bits/val':>15} | {'cuSZp bits/val':>14} "
          f"| {'PSNR dB':>8}")
    for rel_b, a, b in zip(bounds, ours, theirs):
        print(f"{rel_b:>6g} | {a.bit_rate:>15.2f} | {b.bit_rate:>14.2f} "
              f"| {a.psnr:>8.2f}")


if __name__ == "__main__":
    main()
