"""Compressing a Reverse Time Migration (RTM) snapshot stream.

RTM — the paper's headline motivation (2,800 TB from a single aperture) —
writes a 3-D wavefield snapshot every few timesteps and reads them back in
reverse order during imaging. This example streams the synthetic RTM
snapshots through CereSZ, showing the characteristic ratio trajectory
(early, silent snapshots compress at the 32x format cap; late reverberant
ones do not) and the modeled wafer throughput for the whole stream.

Run:  python examples/rtm_seismic_stream.py
"""

import numpy as np

from repro import CereSZ, WaferConfig
from repro.core.quantize import relative_to_absolute
from repro.datasets import generate_field, get_dataset
from repro.metrics import check_error_bound, psnr
from repro.perf import measure_workload, wafer_throughput


def main() -> None:
    info = get_dataset("RTM")
    codec = CereSZ()
    wafer = WaferConfig(rows=512, cols=512)
    rel = 1e-3
    snapshots = range(0, info.num_fields, 5)

    print(f"RTM aperture {info.synthetic_shape}, REL {rel:g}")
    print(f"{'t':>3} | {'ratio':>6} | {'zero%':>6} | {'PSNR dB':>8} | "
          f"{'wafer GB/s':>10}")
    print("-" * 47)

    raw = comp = 0
    for t in snapshots:
        field = generate_field("RTM", t)
        result = codec.compress(field, rel=rel)
        restored = codec.decompress(result.stream)
        assert check_error_bound(field, restored, result.eps)

        eps = relative_to_absolute(field, rel)
        perf = wafer_throughput(measure_workload(field, eps), wafer)
        raw += result.original_bytes
        comp += result.compressed_bytes
        print(
            f"{t:>3} | {result.ratio:>6.2f} "
            f"| {result.zero_block_fraction:>5.1%} "
            f"| {psnr(field, restored):>8.2f} "
            f"| {perf.throughput_gbs:>10.1f}"
        )

    print("-" * 47)
    print(f"stream ratio: {raw / comp:.2f}x "
          f"({raw / 1e6:.0f} MB -> {comp / 1e6:.0f} MB)")

    # Scale the finding to the paper's motivating number.
    full_tb = 2800.0
    print(
        f"at this ratio, RTM's 2,800 TB per timestamp shrinks to "
        f"{full_tb / (raw / comp):.0f} TB"
    )


if __name__ == "__main__":
    main()
