"""In-situ compression of a running climate simulation (CESM-ATM style).

The paper's motivation: simulations emit data faster than storage absorbs
it, so snapshots are compressed inline, every timestep, under a quality
budget. This example advances a toy atmospheric solver, compresses each
snapshot with CereSZ, and accounts the storage/IO saved — plus what the
wafer model says the compression would cost at line rate on a CS-2.

Run:  python examples/climate_insitu.py
"""

import numpy as np

from repro import CereSZ, FrameWriter, WaferConfig
from repro.core.streaming import FrameReader
from repro.core.quantize import relative_to_absolute
from repro.metrics import check_error_bound
from repro.perf import measure_workload, wafer_throughput


def step_simulation(state: np.ndarray, rng) -> np.ndarray:
    """One explicit diffusion-advection step of a toy atmosphere."""
    pad = np.pad(state, 1, mode="wrap")
    laplacian = (
        pad[:-2, 1:-1] + pad[2:, 1:-1] + pad[1:-1, :-2] + pad[1:-1, 2:]
        - 4.0 * state
    )
    advected = np.roll(state, shift=1, axis=1)  # zonal wind
    forcing = 0.02 * rng.standard_normal(state.shape)
    return (0.7 * state + 0.3 * advected + 0.15 * laplacian + forcing).astype(
        np.float32
    )


def main() -> None:
    rng = np.random.default_rng(11)
    shape = (180, 360)
    state = np.cumsum(
        rng.standard_normal(shape).astype(np.float32), axis=1
    )

    codec = CereSZ()
    wafer = WaferConfig(rows=512, cols=512)
    rel = 1e-3
    steps = 20

    raw_total = 0
    compressed_total = 0
    print(f"{'step':>4} | {'ratio':>6} | {'zero%':>6} | {'wafer GB/s':>10}")
    print("-" * 38)
    for step in range(steps):
        state = step_simulation(state, rng)
        result = codec.compress(state, rel=rel)
        restored = codec.decompress(result.stream)
        assert check_error_bound(state, restored, result.eps)

        raw_total += result.original_bytes
        compressed_total += result.compressed_bytes
        if step % 4 == 0:
            eps = relative_to_absolute(state, rel)
            workload = measure_workload(state, eps)
            perf = wafer_throughput(workload, wafer)
            print(
                f"{step:>4} | {result.ratio:>6.2f} "
                f"| {result.zero_block_fraction:>5.1%} "
                f"| {perf.throughput_gbs:>10.1f}"
            )

    print("-" * 38)
    print(f"raw output         : {raw_total / 1e6:.1f} MB over {steps} steps")
    print(f"compressed output  : {compressed_total / 1e6:.1f} MB")
    print(f"aggregate ratio    : {raw_total / compressed_total:.2f}x")
    print(
        "every snapshot verified within its REL "
        f"{rel:g} bound before being 'written'"
    )

    # For an archival time series, frame the snapshots under one *absolute*
    # bound (a per-step REL bound would drift with each step's range).
    rng = np.random.default_rng(11)
    state = np.cumsum(rng.standard_normal(shape).astype(np.float32), axis=1)
    eps_abs = 0.001 * float(state.max() - state.min())
    writer = FrameWriter(eps=eps_abs)
    for _ in range(5):
        state = step_simulation(state, rng)
        writer.add(state)
    archive = writer.getvalue()
    reader = FrameReader(archive)
    print(
        f"\nframed archive: {len(reader)} snapshots, "
        f"{len(archive) / 1e6:.2f} MB, shared eps {reader.eps:.4g}, "
        f"ratio {writer.ratio:.2f}x"
    )


if __name__ == "__main__":
    main()
