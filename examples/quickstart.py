"""Quickstart: compress a scientific field with CereSZ.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CereSZ
from repro.metrics import max_abs_error, psnr, ssim


def main() -> None:
    # A synthetic "simulation output": a smooth 2-D field + mild noise.
    rng = np.random.default_rng(7)
    y, x = np.mgrid[0:300, 0:400]
    field = (
        np.sin(x / 40.0) * np.cos(y / 25.0) * 50.0
        + 0.05 * rng.standard_normal((300, 400))
    ).astype(np.float32)

    codec = CereSZ()

    # REL 1e-3: every reconstructed value within 0.1% of the value range
    # of its original (the paper's evaluation convention).
    result = codec.compress(field, rel=1e-3)
    restored = codec.decompress(result.stream)

    print(f"original bytes    : {result.original_bytes}")
    print(f"compressed bytes  : {result.compressed_bytes}")
    print(f"compression ratio : {result.ratio:.2f}x")
    print(f"bit rate          : {result.bit_rate:.2f} bits/value")
    print(f"error bound (abs) : {result.eps:.6g}")
    print(f"max actual error  : {max_abs_error(field, restored):.6g}")
    print(f"zero blocks       : {result.zero_block_fraction:.1%}")
    print(f"PSNR              : {psnr(field, restored):.2f} dB")
    print(f"SSIM              : {ssim(field, restored):.6f}")

    assert max_abs_error(field, restored) <= result.eps
    print("\nerror bound verified: every value within eps of its original")


if __name__ == "__main__":
    main()
