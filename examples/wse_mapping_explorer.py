"""Exploring the three WSE parallelization strategies on the simulator.

Runs the same data through the paper's three mappings (Fig 6) on a small
simulated mesh, prints per-PE cycle accounting, and shows Algorithm 1's
stage distribution plus the maximum feasible pipeline length.

Run:  python examples/wse_mapping_explorer.py
"""

import numpy as np

from repro import CereSZ
from repro.core.schedule import (
    distribute_substages,
    estimate_fixed_length,
    max_feasible_pipeline_length,
)
from repro.core.stages import compression_substages
from repro.core.tuning import tune_pipeline_length
from repro.core.wse_compressor import WSECereSZ


def main() -> None:
    rng = np.random.default_rng(3)
    data = np.cumsum(rng.normal(size=32 * 48)).astype(np.float32)
    rel = 1e-3

    reference = CereSZ().compress(data, rel=rel)
    print(f"input: {data.size} values; reference ratio "
          f"{reference.ratio:.2f}x\n")

    # --- Algorithm 1: planning the pipeline -------------------------------------
    fl = estimate_fixed_length(data, reference.eps, fraction=0.05)
    stages = compression_substages(fl)
    limit = max_feasible_pipeline_length(stages)
    print(f"sampled fixed length: {fl} bits -> {len(stages)} sub-stages, "
          f"max feasible pipeline length {limit}")
    for pl in (2, 4):
        dist = distribute_substages(stages, pl)
        print(f"  pl={pl}: groups {dist.stage_names()}")
        print(f"        cycles {[round(c) for c in dist.group_cycles]} "
              f"(imbalance {dist.imbalance:.2f})")
    print()

    # --- The three mappings, simulated ------------------------------------------
    configs = [
        ("rows (Fig 6 left)", dict(rows=4, cols=1, strategy="rows")),
        (
            "pipeline (Fig 6 middle)",
            dict(rows=2, cols=4, strategy="pipeline", pipeline_length=4),
        ),
        ("multi-pipeline (Fig 6 right)", dict(rows=2, cols=4, strategy="multi")),
        (
            "staged multi (2 pipelines x 2)",
            dict(rows=2, cols=4, strategy="multi", pipeline_length=2),
        ),
    ]
    print(f"{'strategy':<30} | {'makespan':>9} | {'tasks':>5} | "
          f"{'imbalance':>9} | identical")
    print("-" * 72)
    for label, kwargs in configs:
        sim = WSECereSZ(**kwargs)
        result = sim.compress(data, rel=rel)
        trace = result.report.trace
        print(
            f"{label:<30} | {result.makespan_cycles:>9.0f} "
            f"| {result.report.tasks_run:>5} "
            f"| {trace.load_imbalance():>9.2f} "
            f"| {result.stream == reference.stream}"
        )

    tuned = tune_pipeline_length(data, reference.eps)
    print(
        f"\nSection 4.4 tuning: optimal pipeline length "
        f"{tuned.pipeline_length} "
        f"({tuned.throughput_gbs:.0f} GB/s modeled on 512x512); sweep: "
        + ", ".join(f"pl={pl}: {g:.0f}" for pl, g in tuned.sweep)
    )

    print("\nper-PE relay cycles in the multi-pipeline run (west PEs relay")
    print("for everyone east of them — the Fig 9 pattern):")
    sim = WSECereSZ(rows=1, cols=4, strategy="multi")
    result = sim.compress(data, rel=rel)
    for t in sorted(result.report.trace.traces, key=lambda t: t.col):
        bar = "#" * (t.relay_cycles // 200)
        print(f"  PE(0,{t.col}): relay {t.relay_cycles:>6} {bar}")


if __name__ == "__main__":
    main()
