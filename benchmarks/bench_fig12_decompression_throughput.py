"""Fig 12: decompression throughput.

Paper: CereSZ averages 581.31 GB/s (1.27x its compression average, up to
920.67 GB/s on RTM) — decompression skips Max/GetLength because the block
headers pre-record the fixed length.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness import format_table
from repro.harness.figures import (
    fig11_compression_throughput,
    fig12_decompression_throughput,
)

PAPER_AVERAGE = 581.31


def test_fig12(benchmark, record_result):
    bars = run_once(benchmark, fig12_decompression_throughput)
    text = format_table(
        ["Dataset", "REL", "Compressor", "GB/s"],
        [
            [b.dataset, f"{b.rel:g}", b.compressor,
             f"{b.throughput_gbs:.2f}"]
            for b in bars
        ],
        title="Fig 12: Decompression throughput (GB/s)",
    )
    ceresz = [b.throughput_gbs for b in bars if b.compressor == "CereSZ"]
    avg = float(np.mean(ceresz))
    record_result(
        "fig12_decompression_throughput",
        text + f"\nCereSZ average: {avg:.2f} GB/s (paper: {PAPER_AVERAGE})",
    )

    assert 350 <= avg <= 1100
    # Decompression beats compression per configuration (Figs 11 vs 12).
    comp = {
        (b.dataset, b.rel): b.throughput_gbs
        for b in fig11_compression_throughput()
        if b.compressor == "CereSZ"
    }
    decomp = {
        (b.dataset, b.rel): b.throughput_gbs
        for b in bars
        if b.compressor == "CereSZ"
    }
    ratios = [decomp[k] / comp[k] for k in comp]
    assert all(r > 1.0 for r in ratios)
    assert 1.1 <= float(np.mean(ratios)) <= 1.45  # paper: ~1.27
