"""Host decode-path throughput: serial v1 vs indexed v2 vs sharded.

This is the acceptance benchmark for the container-v2 index. Container v1
forces the decoder to *walk* every block header sequentially (record sizes
are data-dependent) — a per-block Python loop that dominates decode for
well-compressed streams, where payloads are tiny but the walk still pays
its per-block cost. Container v2 embeds a one-byte-per-block fl table so
every record offset falls out of a single ``cumsum``. The shard engine
additionally splits the field into independently-decodable super-shards
dispatched across a worker pool.

Two field profiles bracket the operating range:

* ``smooth`` — the RTM snapshot generator (the paper's streaming use
  case) under the paper's REL 1e-3 bound: ratio ~25x, mostly zero
  blocks, decode utterly dominated by the v1 header walk;
* ``turbulent`` — the HACC particle generator: ratio ~3x, payload-heavy
  records, the unfavourable case for the index (it still wins, just
  less).

Run as a script (not under pytest-benchmark — the point is the relative
wall-clock of three container layouts, best-of-N):

    PYTHONPATH=src python benchmarks/bench_host_throughput.py
    PYTHONPATH=src python benchmarks/bench_host_throughput.py --smoke

Results land in ``benchmarks/results/host_throughput.txt``. Pass
``--min-speedup X`` to exit non-zero unless the smooth-field v2-over-v1
decode speedup reaches X (CI uses a conservative threshold; the headline
number in the committed results file comes from a full-size run).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro import CereSZ  # noqa: E402
from repro.datasets import generate_field  # noqa: E402

REL = 1e-3
PROFILES = {"smooth": "RTM", "turbulent": "HACC"}


def make_field(profile: str, n: int) -> np.ndarray:
    """Tile one synthetic SDRBench-like field out to ``n`` elements."""
    base = generate_field(PROFILES[profile], seed=0).reshape(-1)
    base = base.astype(np.float32)
    reps = -(-n // base.size)
    return np.tile(base, reps)[:n]


def best_of(repeats: int, fn, *args, **kwargs):
    """(best seconds, last return value) over ``repeats`` calls."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, value


def run_profile(
    profile: str, n: int, repeats: int, jobs: int
) -> tuple[list[dict], float]:
    codec = CereSZ()
    field = make_field(profile, n)
    raw_mb = field.nbytes / 1e6

    cases = [
        ("serial-v1", {"index": False}, {}),
        ("indexed-v2", {"index": True}, {}),
        ("sharded", {"jobs": jobs}, {"jobs": jobs}),
    ]
    rows = []
    for name, ckw, dkw in cases:
        t_c, result = best_of(
            repeats, codec.compress, field, rel=REL, **ckw
        )
        t_d, restored = best_of(
            repeats, codec.decompress, result.stream, **dkw
        )
        err = float(np.max(np.abs(restored - field)))
        if err > result.eps:
            raise AssertionError(
                f"{profile}/{name}: error {err} exceeds bound {result.eps}"
            )
        rows.append(
            {
                "name": name,
                "ratio": result.ratio,
                "compress_s": t_c,
                "decompress_s": t_d,
                "compress_mbs": raw_mb / t_c,
                "decompress_mbs": raw_mb / t_d,
            }
        )

    by_name = {r["name"]: r for r in rows}
    speedup = (
        by_name["serial-v1"]["decompress_s"]
        / by_name["indexed-v2"]["decompress_s"]
    )
    return rows, speedup


def render(results: dict, n: int, jobs: int) -> str:
    lines = [
        "host decode-path throughput: container v1 vs v2 vs shard engine",
        f"fields: {n} float32 elements ({n * 4 / 1e6:.1f} MB), "
        f"REL {REL}, jobs {jobs}, best-of-N wall clock",
    ]
    for profile, (rows, speedup) in results.items():
        lines += [
            "",
            f"[{profile}] ({PROFILES[profile]} generator)",
            f"{'container':<12} {'ratio':>7} {'comp MB/s':>10} "
            f"{'decomp MB/s':>12} {'decomp s':>10}",
        ]
        for r in rows:
            lines.append(
                f"{r['name']:<12} {r['ratio']:>7.2f} "
                f"{r['compress_mbs']:>10.1f} "
                f"{r['decompress_mbs']:>12.1f} "
                f"{r['decompress_s']:>10.4f}"
            )
        lines.append(
            f"decode speedup, indexed-v2 over serial-v1: {speedup:.1f}x"
        )
    lines += [
        "",
        "(v1 pays a per-block Python header walk; v2 computes every",
        " record offset from the embedded fl table with one cumsum)",
    ]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--elements",
        type=int,
        default=1 << 22,
        help="field size in float32 elements (default 4Mi)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N (default 3)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=max(os.cpu_count() or 1, 2),
        help="worker count for the sharded case",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small field, one repeat, no results file (CI sanity check)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless smooth-field v2 decode beats v1 by this factor",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "results", "host_throughput.txt"
        ),
        help="results file (ignored with --smoke)",
    )
    args = parser.parse_args(argv)

    n = 1 << 20 if args.smoke else args.elements
    repeats = 1 if args.smoke else args.repeats
    results = {
        profile: run_profile(profile, n, repeats, args.jobs)
        for profile in PROFILES
    }
    report = render(results, n, args.jobs)
    print(report, end="")

    if not args.smoke:
        os.makedirs(os.path.dirname(args.out), exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"wrote {args.out}")

    smooth_speedup = results["smooth"][1]
    if args.min_speedup is not None and smooth_speedup < args.min_speedup:
        print(
            f"FAIL: decode speedup {smooth_speedup:.1f}x below required "
            f"{args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
