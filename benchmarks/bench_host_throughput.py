"""Host throughput: fused fast path vs reference, and container layouts.

Two acceptance stories share this benchmark:

* **Container v2 index** (decode side). Container v1 forces the decoder
  to *walk* every block header sequentially (record sizes are
  data-dependent) — a per-block Python loop that dominates decode for
  well-compressed streams. Container v2 embeds a one-byte-per-block fl
  table so every record offset falls out of a single ``cumsum``.
* **Fused host kernels** (both sides). The reference pipeline runs the
  paper's stages as separate whole-field passes; the fused path
  (:mod:`repro.core.fastpath`) runs the same arithmetic in one blocked
  pass with reused scratch and a byte-lane bit-shuffle, producing
  byte-identical streams (asserted here on every run). The shard engine
  stacks on top, dispatching fused super-shards across a worker pool.

Two field profiles bracket the operating range:

* ``smooth`` — the RTM snapshot generator (the paper's streaming use
  case) under the paper's REL 1e-3 bound: ratio ~25x, mostly zero
  blocks; the v1 header walk and the reference's per-pass temporaries
  both hurt most here;
* ``turbulent`` — the HACC particle generator: ratio ~3x, payload-heavy
  records, the unfavourable case for both optimizations (they still
  win, just less).

Run as a script (not under pytest-benchmark — the point is relative
wall-clock of whole pipelines, best-of-N):

    PYTHONPATH=src python benchmarks/bench_host_throughput.py
    PYTHONPATH=src python benchmarks/bench_host_throughput.py --quick

Results land in ``BENCH_host_throughput.json`` (the perf trajectory,
written on every run including ``--quick``) and
``benchmarks/results/host_throughput.txt`` (full runs only).
``--min-speedup X`` exits non-zero unless the smooth-field v2-over-v1
decode speedup reaches X; ``--min-fused-speedup X`` does the same for
the smooth-field fused-over-reference *compress* speedup. CI uses
conservative thresholds; the headline numbers in the committed JSON come
from a full-size run.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

try:  # script mode: the benchmarks dir itself is sys.path[0]
    from _benchlib import add_ledger_flag, emit_bench_record, get_logger
except ImportError:  # collected as part of the benchmarks package
    from benchmarks._benchlib import (
        add_ledger_flag,
        emit_bench_record,
        get_logger,
    )
from repro import CereSZ  # noqa: E402
from repro.datasets import generate_field  # noqa: E402

LOG = get_logger("bench.host_throughput")

REL = 1e-3
PROFILES = {"smooth": "RTM", "turbulent": "HACC"}

#: Floor on best-of-N for the reference/fused pair: their ratio is the
#: gated fused-speedup figure, and this box shows up to 1.6x run-to-run
#: spread on identical work, so the quiet-machine time needs several
#: samples to surface on both sides.
PAIR_REPEATS = 6


def make_field(profile: str, n: int) -> np.ndarray:
    """Tile one synthetic SDRBench-like field out to ``n`` elements."""
    base = generate_field(PROFILES[profile], seed=0).reshape(-1)
    base = base.astype(np.float32)
    reps = -(-n // base.size)
    return np.tile(base, reps)[:n]


def best_of(repeats: int, fn, *args, **kwargs):
    """(best seconds, last return value) over ``repeats`` calls."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, value


def best_of_paired(repeats: int, fn_a, fn_b):
    """Best-of-N for two functions with interleaved, order-alternating runs.

    The fused-speedup figure is a ratio of two measurements on a machine
    whose throughput drifts between measurement windows; interleaving
    gives both functions the same epochs, alternating the within-pair
    order cancels cache/allocator after-effects, and pausing the GC keeps
    a collection from landing inside one side's window. Best-of-N then
    converges both sides to their quiet-machine time.
    """
    best_a = best_b = float("inf")
    val_a = val_b = None
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for i in range(repeats):
            pair = ((fn_a, "a"), (fn_b, "b"))
            if i % 2:
                pair = pair[::-1]
            for fn, side in pair:
                t0 = time.perf_counter()
                value = fn()
                dt = time.perf_counter() - t0
                if side == "a":
                    val_a = value
                    best_a = min(best_a, dt)
                else:
                    val_b = value
                    best_b = min(best_b, dt)
    finally:
        if was_enabled:
            gc.enable()
    return (best_a, val_a), (best_b, val_b)


def run_profile(
    profile: str, n: int, repeats: int, jobs: int
) -> tuple[list[dict], dict]:
    reference = CereSZ(fast=False)
    fused = CereSZ(fast=True)
    field = make_field(profile, n)
    raw_mb = field.nbytes / 1e6

    rows = []
    streams: dict[str, bytes] = {}

    def record(name, t_c, result, t_d, restored):
        err = float(np.max(np.abs(restored.reshape(-1) - field)))
        if err > result.eps:
            raise AssertionError(
                f"{profile}/{name}: error {err} exceeds bound {result.eps}"
            )
        streams[name] = result.stream
        rows.append(
            {
                "name": name,
                "ratio": result.ratio,
                "compress_s": t_c,
                "decompress_s": t_d,
                "compress_mbs": raw_mb / t_c,
                "decompress_mbs": raw_mb / t_d,
            }
        )

    # Standalone cases: the container-v1 baseline and the sharded engine.
    for name, codec, ckw, dkw in (
        ("serial-v1", reference, {"index": False}, {}),
        ("fused-sharded", fused, {"jobs": jobs}, {"jobs": jobs}),
    ):
        t_c, result = best_of(repeats, codec.compress, field, rel=REL, **ckw)
        t_d, restored = best_of(repeats, codec.decompress, result.stream, **dkw)
        record(name, t_c, result, t_d, restored)

    # The reference/fused pair is timed interleaved: its ratio is the
    # gated fused-speedup figure. Both cases write indexed-v2 streams.
    pair_repeats = max(repeats, PAIR_REPEATS)
    (tc_ref, res_ref), (tc_fus, res_fus) = best_of_paired(
        pair_repeats,
        lambda: reference.compress(field, rel=REL, index=True),
        lambda: fused.compress(field, rel=REL, index=True),
    )
    # Tentpole invariant, checked on every benchmark run: the fused
    # kernels reproduce the reference stream byte for byte.
    if res_fus.stream != res_ref.stream:
        raise AssertionError(
            f"{profile}: fused stream differs from reference stream"
        )
    (td_ref, out_ref), (td_fus, out_fus) = best_of_paired(
        pair_repeats,
        lambda: reference.decompress(res_ref.stream),
        lambda: fused.decompress(res_fus.stream),
    )
    if out_fus.tobytes() != out_ref.tobytes():
        raise AssertionError(
            f"{profile}: fused decode differs from reference decode"
        )
    record("indexed-v2", tc_ref, res_ref, td_ref, out_ref)
    record("fused", tc_fus, res_fus, td_fus, out_fus)

    by_name = {r["name"]: r for r in rows}
    summary = {
        "v2_over_v1_decode_speedup": (
            by_name["serial-v1"]["decompress_s"]
            / by_name["indexed-v2"]["decompress_s"]
        ),
        "fused_compress_speedup": (
            by_name["indexed-v2"]["compress_s"]
            / by_name["fused"]["compress_s"]
        ),
        "fused_decompress_speedup": (
            by_name["indexed-v2"]["decompress_s"]
            / by_name["fused"]["decompress_s"]
        ),
    }
    return rows, summary


def render(results: dict, n: int, jobs: int) -> str:
    lines = [
        "host throughput: fused fast path vs reference, v1 vs v2 vs shards",
        f"fields: {n} float32 elements ({n * 4 / 1e6:.1f} MB), "
        f"REL {REL}, jobs {jobs}, best-of-N wall clock",
    ]
    for profile, (rows, summary) in results.items():
        lines += [
            "",
            f"[{profile}] ({PROFILES[profile]} generator)",
            f"{'case':<14} {'ratio':>7} {'comp MB/s':>10} "
            f"{'decomp MB/s':>12} {'comp s':>9} {'decomp s':>9}",
        ]
        for r in rows:
            lines.append(
                f"{r['name']:<14} {r['ratio']:>7.2f} "
                f"{r['compress_mbs']:>10.1f} "
                f"{r['decompress_mbs']:>12.1f} "
                f"{r['compress_s']:>9.4f} "
                f"{r['decompress_s']:>9.4f}"
            )
        lines += [
            f"decode speedup, indexed-v2 over serial-v1: "
            f"{summary['v2_over_v1_decode_speedup']:.1f}x",
            f"fused over reference: compress "
            f"{summary['fused_compress_speedup']:.2f}x, decompress "
            f"{summary['fused_decompress_speedup']:.2f}x",
        ]
    lines += [
        "",
        "(serial-v1 pays a per-block Python header walk; indexed-v2 is",
        " the reference multi-stage pipeline on a v2 container; fused is",
        " the single-pass kernel of repro/core/fastpath.py — its streams",
        " are asserted byte-identical to indexed-v2 on every run;",
        " fused-sharded adds the worker-pool shard engine.)",
    ]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--elements",
        type=int,
        default=1 << 22,
        help="field size in float32 elements (default 4Mi)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N (default 3)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=max(os.cpu_count() or 1, 2),
        help="worker count for the sharded case",
    )
    parser.add_argument(
        "--quick",
        "--smoke",
        dest="quick",
        action="store_true",
        help="small field, fewer repeats, no results table "
        "(CI smoke; still writes the JSON)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless smooth-field v2 decode beats v1 by this factor",
    )
    parser.add_argument(
        "--min-fused-speedup",
        type=float,
        default=None,
        help="fail unless smooth-field fused compress beats the reference "
        "by this factor (acceptance bar: 5; CI gates conservatively)",
    )
    parser.add_argument(
        "--json-out",
        default=os.path.normpath(
            os.path.join(
                os.path.dirname(__file__),
                os.pardir,
                "BENCH_host_throughput.json",
            )
        ),
        help="perf-trajectory JSON path",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "results", "host_throughput.txt"
        ),
        help="results file (ignored with --quick)",
    )
    add_ledger_flag(parser)
    args = parser.parse_args(argv)

    n = 1 << 20 if args.quick else args.elements
    repeats = 1 if args.quick else args.repeats
    t0 = time.perf_counter()
    results = {
        profile: run_profile(profile, n, repeats, args.jobs)
        for profile in PROFILES
    }
    wall_s = time.perf_counter() - t0
    report = render(results, n, args.jobs)
    print(report, end="")

    payload = {
        "benchmark": "host_throughput",
        "elements": n,
        "rel": REL,
        "jobs": args.jobs,
        "quick": args.quick,
        "profiles": {
            profile: {"cases": rows, **summary}
            for profile, (rows, summary) in results.items()
        },
    }
    with open(args.json_out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    LOG.info("wrote", path=args.json_out)

    if not args.quick:
        os.makedirs(os.path.dirname(args.out), exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(report)
        LOG.info("wrote", path=args.out)

    emit_bench_record(
        args.ledger,
        payload,
        config={
            "bench": "host_throughput",
            "elements": n,
            "rel": REL,
            "jobs": args.jobs,
            "repeats": repeats,
            "quick": args.quick,
        },
        wall_s=wall_s,
        artifacts={"json": args.json_out},
    )

    smooth = results["smooth"][1]
    if (
        args.min_speedup is not None
        and smooth["v2_over_v1_decode_speedup"] < args.min_speedup
    ):
        LOG.error(
            "gate_failed",
            metric="v2_over_v1_decode_speedup",
            value=smooth["v2_over_v1_decode_speedup"],
            required=args.min_speedup,
        )
        return 1
    if (
        args.min_fused_speedup is not None
        and smooth["fused_compress_speedup"] < args.min_fused_speedup
    ):
        LOG.error(
            "gate_failed",
            metric="fused_compress_speedup",
            value=smooth["fused_compress_speedup"],
            required=args.min_fused_speedup,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
