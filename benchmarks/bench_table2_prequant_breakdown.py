"""Table 2: Multiplication / Addition breakdown of Pre-Quantization.

Paper: Multiplication ~5063-5081 cycles (~80% of pre-quantization),
Addition ~1033-1049.
"""

from benchmarks.conftest import run_once
from repro.harness import format_table
from repro.harness.tables import table2_prequant_breakdown


def test_table2(benchmark, record_result):
    rows = run_once(benchmark, table2_prequant_breakdown)
    text = format_table(
        ["Dataset", "Pre-Quant.", "Multiplication", "Addition",
         "paper (PQ/Mult/Add)"],
        [
            [r.dataset, round(r.prequant), round(r.multiplication),
             round(r.addition), r.paper]
            for r in rows
        ],
        title="Table 2: Breakdown cycles for Pre-Quantization",
    )
    record_result("table2_prequant_breakdown", text)
    for r in rows:
        assert r.multiplication + r.addition == r.prequant
        assert 0.75 <= r.multiplication / r.prequant <= 0.88
