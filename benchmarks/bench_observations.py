"""The paper's three Observations, re-derived from our measurements."""

from benchmarks.conftest import run_once
from repro.harness.observations import all_observations


def test_observations(benchmark, record_result):
    verdicts = run_once(benchmark, all_observations)
    lines = []
    for v in verdicts:
        lines.append(f"Observation {v.observation}: "
                     f"{'HOLDS' if v.holds else 'FAILS'}")
        lines.append(f"  claim   : {v.claim}")
        lines.append(f"  evidence: {v.evidence}")
        assert v.holds, (v.observation, v.evidence)
    record_result("observations", "\n".join(lines))
