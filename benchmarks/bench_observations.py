"""The paper's three Observations, re-derived from our measurements.

Runs under pytest-benchmark (the usual path) or standalone::

    PYTHONPATH=src python benchmarks/bench_observations.py

Both paths write the human-readable verdict table *and* a
machine-readable ``observations.json`` next to it — the JSON carries the
structured evidence dicts, and ``--ledger`` appends the holds/fails
verdicts to the run ledger as ``obs{n}.holds_ratio`` metrics so
``ceresz report`` can flag a claim that stops holding.
"""

import json
import os
import sys

if __package__ in (None, ""):  # script mode: repo root + src onto sys.path
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

from benchmarks._benchlib import (  # noqa: E402
    add_ledger_flag,
    emit_bench_record,
    get_logger,
)
from benchmarks.conftest import RESULTS_DIR, run_once  # noqa: E402
from repro.harness.observations import all_observations  # noqa: E402

LOG = get_logger("bench.observations")


def render(verdicts) -> str:
    lines = []
    for v in verdicts:
        lines.append(f"Observation {v.observation}: "
                     f"{'HOLDS' if v.holds else 'FAILS'}")
        lines.append(f"  claim   : {v.claim}")
        lines.append(f"  evidence: {v.evidence}")
    return "\n".join(lines)


def build_payload(verdicts) -> dict:
    """Machine-readable twin of the text table (and the ledger input)."""
    return {
        "benchmark": "observations",
        "verdicts": [
            {
                "observation": v.observation,
                "claim": v.claim,
                "holds": v.holds,
                "evidence": v.evidence,
            }
            for v in verdicts
        ],
    }


def write_json(payload: dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def test_observations(benchmark, record_result, results_dir):
    verdicts = run_once(benchmark, all_observations)
    record_result("observations", render(verdicts))
    write_json(build_payload(verdicts), results_dir / "observations.json")
    for v in verdicts:
        assert v.holds, (v.observation, v.evidence)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json-out",
        default=os.path.join(RESULTS_DIR, "observations.json"),
        help="machine-readable verdicts (written on every run)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(RESULTS_DIR, "observations.txt"),
        help="human-readable verdict table",
    )
    add_ledger_flag(parser)
    args = parser.parse_args(argv)

    import time

    t0 = time.perf_counter()
    verdicts = all_observations()
    wall_s = time.perf_counter() - t0

    report = render(verdicts)
    print(report)
    payload = build_payload(verdicts)

    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        fh.write(report + "\n")
    LOG.info("wrote", path=args.out)
    write_json(payload, args.json_out)
    LOG.info("wrote", path=args.json_out)
    emit_bench_record(
        args.ledger,
        payload,
        config={"bench": "observations"},
        wall_s=wall_s,
        artifacts={"json": args.json_out},
    )

    failed = [v for v in verdicts if not v.holds]
    for v in failed:
        LOG.error("gate_failed", observation=v.observation,
                  evidence=str(v.evidence))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
