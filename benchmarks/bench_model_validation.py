"""Cross-validation artifact: analytic model vs discrete-event simulator.

Not a paper table — this is the reproduction's own soundness check, the
structural leg of DESIGN.md's fidelity claim. Both parallelization
strategies run on small meshes with real data and real kernels; makespans
must track the Eq. 2-4 prediction.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.perf.validate import validate_against_simulator, validation_report


def _run():
    rng = np.random.default_rng(0)
    data = np.cumsum(rng.normal(size=32 * 64)).astype(np.float32)
    return validate_against_simulator(data=data, eps=0.05)


def test_model_validation(benchmark, record_result):
    points = run_once(benchmark, _run)
    record_result("model_validation", validation_report(points))
    for p in points:
        assert p.relative_gap < 0.15, (p.strategy, p.rows, p.cols)
