"""WSE simulator speed: legacy vs optimized engine vs row-parallel.

This is the acceptance benchmark for the simulator performance layer.
Three optimizations stack on the hot path:

* route caching — ``Fabric.resolve`` memoizes per (PE, color, entering
  direction) instead of re-walking the static route for every send;
* event-queue slimming + fused kernels — at most one ``task`` event per
  PE, ``match`` probes only when they can pair, zero-copy scratch sends,
  and whole-block compression fused into one vectorized kernel with
  identical cycle accounting;
* row-parallel simulation — provably independent row subgraphs simulated
  in separate processes and merged exactly (``jobs > 1``).

Each strategy/mesh cell runs the same plan three ways — legacy (every
fast path disabled), optimized (defaults, single process), and parallel
(``jobs`` workers) — and asserts the compressed bytes and makespans are
identical before reporting wall time and simulated-cycles/second.

Run as a script (the point is relative wall clock, best-of-N):

    PYTHONPATH=src python benchmarks/bench_sim_speed.py
    PYTHONPATH=src python benchmarks/bench_sim_speed.py --quick

Results land in ``BENCH_sim_speed.json`` (the perf trajectory) and
``benchmarks/results/sim_speed.txt``. ``--min-speedup X`` exits non-zero
unless the fig7 rows-strategy configuration speeds up by at least X
single-process (CI uses a conservative threshold).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

try:  # script mode: the benchmarks dir itself is sys.path[0]
    from _benchlib import add_ledger_flag, emit_bench_record, get_logger
except ImportError:  # collected as part of the benchmarks package
    from benchmarks._benchlib import (
        add_ledger_flag,
        emit_bench_record,
        get_logger,
    )
from repro.core.plan import (  # noqa: E402
    plan_multi_pipeline,
    plan_pipeline,
    plan_row_parallel,
    tile_rows,
)
from repro.core.schedule import distribute_substages  # noqa: E402
from repro.core.simulate import (  # noqa: E402
    simulate_plan,
    simulate_replicated,
)
from repro.core.stages import compression_substages  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.tracing import Tracer  # noqa: E402

LOG = get_logger("bench.sim_speed")

BLOCK_SIZE = 32
EPS = 1e-3

#: Floor on best-of-N for the optimized/observed pair: their ratio is the
#: gated obs-overhead figure, and both wall times are short enough
#: (~10-100 ms) that best-of-3 still carries scheduler noise. Profiling
#: puts the true overhead near 1%; 25 interleaved order-alternating pairs
#: keep the measured figure reliably inside a 5% gate on a loaded machine
#: (9 still showed ±8% outliers).
OBS_REPEATS = 25

#: (mesh label, rows, cols, blocks-per-row). The fig7 configuration is the
#: rows strategy on the largest mesh run (Fig 7 sweeps PE rows at block 32).
MESHES = [("small", 4, 4, 64), ("large", 8, 8, 128)]


def make_blocks(num_blocks: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(num_blocks, BLOCK_SIZE)).cumsum(axis=1)


def build_plan(strategy: str, rows: int, cols: int, blocks: np.ndarray):
    if strategy == "rows":
        return plan_row_parallel(blocks, EPS, rows=rows, cols=cols)
    if strategy == "pipeline":
        stages = compression_substages(8, BLOCK_SIZE)
        dist = distribute_substages(stages, min(cols, 4))
        return plan_pipeline(blocks, EPS, dist, rows=rows, cols=cols)
    return plan_multi_pipeline(blocks, EPS, rows=rows, cols=cols)


def best_of(repeats: int, fn):
    """(best seconds, last return value) over ``repeats`` calls."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def best_of_paired(repeats: int, fn_a, fn_b):
    """Best-of-N for two functions with interleaved, order-alternating runs.

    The obs-overhead figure is a ratio of two short (~10-100 ms)
    measurements; timing all of A then all of B lets CPU frequency and
    thermal drift between the two windows masquerade as overhead
    (observed swings of ±25% on a loaded machine). Three counter-measures,
    found necessary in that order on a noisy box: the runs interleave so
    both functions sample the same machine epochs; the within-pair order
    alternates so neither side systematically inherits the other's cache
    and allocator after-effects; and the GC is paused so a collection
    doesn't land inside exactly one side's timing window. Best-of-N on
    each side then converges to the quiet-machine time for both.

    Returns ``((best_a, val_a), (best_b, val_b))``.
    """
    best_a = best_b = float("inf")
    val_a = val_b = None
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for i in range(repeats):
            pair = ((fn_a, "a"), (fn_b, "b"))
            if i % 2:
                pair = pair[::-1]
            for fn, side in pair:
                t0 = time.perf_counter()
                value = fn()
                dt = time.perf_counter() - t0
                if side == "a":
                    val_a = value
                    best_a = min(best_a, dt)
                else:
                    val_b = value
                    best_b = min(best_b, dt)
    finally:
        if was_enabled:
            gc.enable()
    return (best_a, val_a), (best_b, val_b)


def run_config(
    strategy: str, rows: int, cols: int, per_row: int, repeats: int, jobs: int
) -> dict:
    blocks = make_blocks(rows * per_row)
    num_blocks = blocks.shape[0]

    # "observed" is the observability acceptance mode: a trace_level="off"
    # tracer plus a metrics registry attached to the optimized run. Its
    # makespan must be identical and its wall time within a few percent —
    # the hot paths only pay one cached bool test per task.
    modes = {
        "legacy": dict(optimize=False, fast_kernels=False, jobs=1),
        "optimized": dict(jobs=1),
        "observed": dict(jobs=1),
        "parallel": dict(jobs=jobs),
    }
    out: dict = {
        "strategy": strategy,
        "rows": rows,
        "cols": cols,
        "num_blocks": num_blocks,
    }
    streams: dict[str, bytes] = {}
    results: dict[str, tuple[float, object]] = {}
    # Plan construction is outside every timed region: the benchmark
    # measures the simulator, and every mode lowers the same plan.
    for mode in ("legacy", "parallel"):
        plan = build_plan(strategy, rows, cols, blocks)
        results[mode] = best_of(
            repeats,
            lambda p=plan, kw=modes[mode]: simulate_plan(p, **kw),
        )
    # The optimized/observed pair is timed interleaved: their ratio is the
    # gated obs-overhead figure. Observer construction is hoisted out of
    # the timed region — the overhead being gated is what observation
    # costs *per simulated task*, and on the small mesh a sub-millisecond
    # run otherwise reads object construction as simulator overhead.
    plan_opt = build_plan(strategy, rows, cols, blocks)
    plan_obs = build_plan(strategy, rows, cols, blocks)
    tracer = Tracer(level="off")
    registry = MetricsRegistry()
    results["optimized"], results["observed"] = best_of_paired(
        max(repeats, OBS_REPEATS),
        lambda: simulate_plan(plan_opt, **modes["optimized"]),
        lambda: simulate_plan(
            plan_obs, tracer=tracer, metrics=registry, **modes["observed"]
        ),
    )
    for mode in modes:
        wall, run = results[mode]
        streams[mode] = run.outputs.stream(num_blocks)
        makespan = run.report.makespan_cycles
        out[mode] = {
            "wall_s": wall,
            "makespan_cycles": makespan,
            "cycles_per_s": makespan / wall if wall else float("inf"),
            "events": run.report.events_processed,
            "partitions": run.partitions,
        }
    if not (
        streams["legacy"] == streams["optimized"]
        == streams["observed"] == streams["parallel"]
    ):
        raise AssertionError(
            f"{strategy} {rows}x{cols}: modes disagree on compressed bytes"
        )
    makespans = {out[m]["makespan_cycles"] for m in modes}
    if len(makespans) != 1:
        raise AssertionError(
            f"{strategy} {rows}x{cols}: modes disagree on makespan "
            f"{sorted(makespans)}"
        )
    out["speedup_optimized"] = out["legacy"]["wall_s"] / out["optimized"]["wall_s"]
    out["speedup_parallel"] = out["legacy"]["wall_s"] / out["parallel"]["wall_s"]
    out["obs_overhead"] = (
        out["observed"]["wall_s"] / out["optimized"]["wall_s"] - 1.0
    )
    return out


def run_hybrid_config(
    strategy: str, rows: int, cols: int, per_row: int, repeats: int
) -> dict:
    """Event vs hybrid on a row-homogeneous workload (one partition class).

    Hybrid simulation is exact for ANY workload; row-homogeneous data is
    where it shines (one representative row simulated, ``rows - 1``
    synthesized), so that is what the speed figure measures. Bytes and
    makespans are asserted identical before any number is reported.
    """
    row_blocks = make_blocks(per_row, seed=11)
    blocks = tile_rows(
        row_blocks, rows, strategy,
        cols=cols if strategy == "multi" else None,
    )
    plan_event = build_plan(strategy, rows, cols, blocks)
    plan_hybrid = build_plan(strategy, rows, cols, blocks)
    wall_event, run_event = best_of(
        repeats, lambda: simulate_plan(plan_event)
    )
    wall_hybrid, run_hybrid = best_of(
        repeats, lambda: simulate_plan(plan_hybrid, mode="hybrid")
    )
    num_blocks = blocks.shape[0]
    if run_event.outputs.stream(num_blocks) != run_hybrid.outputs.stream(
        num_blocks
    ):
        raise AssertionError(
            f"hybrid {strategy} {rows}x{cols}: bytes diverge from event"
        )
    if (
        run_event.report.makespan_cycles
        != run_hybrid.report.makespan_cycles
    ):
        raise AssertionError(
            f"hybrid {strategy} {rows}x{cols}: makespan diverges "
            f"({run_event.report.makespan_cycles} vs "
            f"{run_hybrid.report.makespan_cycles})"
        )
    if run_hybrid.mode != "hybrid" or len(run_hybrid.row_classes) != 1:
        raise AssertionError(
            f"hybrid {strategy} {rows}x{cols}: expected one partition "
            f"class, got mode={run_hybrid.mode} "
            f"classes={run_hybrid.row_classes}"
        )
    return {
        "strategy": strategy,
        "rows": rows,
        "cols": cols,
        "num_blocks": num_blocks,
        "event_wall_s": wall_event,
        "hybrid_wall_s": wall_hybrid,
        "speedup_hybrid": wall_event / wall_hybrid if wall_hybrid else 0.0,
        "makespan_cycles": run_event.report.makespan_cycles,
        "row_classes": len(run_hybrid.row_classes),
    }


#: The full-wafer Fig 14 point: one 994-column multi-pipeline row
#: template replicated across all 750 rows.
WAFER_ROWS, WAFER_COLS = 750, 994


def run_wafer_point() -> dict:
    """Time the full 750x994 wafer via the replication fast path.

    The full plan (~745k PEs) is never materialized: the 1-row template
    is event-simulated once and composed 750 times. Reports wall time,
    makespan, and the Eq. 4 cross-check gap.
    """
    from repro.perf.model import hybrid_model_gap
    from repro.perf.wafer import measure_workload

    row_blocks = make_blocks(WAFER_COLS, seed=13)
    t0 = time.perf_counter()
    template = plan_multi_pipeline(
        row_blocks, EPS, rows=1, cols=WAFER_COLS
    )
    run = simulate_replicated(template, WAFER_ROWS)
    wall = time.perf_counter() - t0
    workload = measure_workload(row_blocks.reshape(-1), EPS)
    makespan = run.report.makespan_cycles
    return {
        "rows": WAFER_ROWS,
        "cols": WAFER_COLS,
        "num_blocks": WAFER_ROWS * WAFER_COLS,
        "wall_s": wall,
        "makespan_cycles": makespan,
        "events": run.report.events_processed,
        "model_gap": hybrid_model_gap(
            makespan,
            num_blocks=WAFER_ROWS * WAFER_COLS,
            rows=WAFER_ROWS,
            total_cols=WAFER_COLS,
            block_cycles=workload.mean_cycles("compress"),
        ),
    }


def render(configs: list[dict], jobs: int) -> str:
    lines = [
        "WSE simulator speed: legacy vs optimized engine vs row-parallel",
        f"block {BLOCK_SIZE}, eps {EPS}, jobs {jobs} for the parallel "
        "column, best-of-N wall clock",
        "",
        f"{'config':<20} {'blocks':>6} {'legacy s':>9} {'opt s':>8} "
        f"{'par s':>8} {'opt x':>6} {'par x':>6} {'obs %':>6} "
        f"{'Mcyc/s opt':>11}",
    ]
    for c in configs:
        label = f"{c['strategy']} {c['rows']}x{c['cols']}"
        lines.append(
            f"{label:<20} {c['num_blocks']:>6} "
            f"{c['legacy']['wall_s']:>9.4f} "
            f"{c['optimized']['wall_s']:>8.4f} "
            f"{c['parallel']['wall_s']:>8.4f} "
            f"{c['speedup_optimized']:>6.2f} "
            f"{c['speedup_parallel']:>6.2f} "
            f"{100 * c['obs_overhead']:>6.1f} "
            f"{c['optimized']['cycles_per_s'] / 1e6:>11.1f}"
        )
    lines += [
        "",
        "(legacy: no route cache, per-activation task events, per-stage",
        " state machine; optimized: all fast paths, single process;",
        " observed: optimized + trace_level=off tracer and a metrics",
        " registry — 'obs %' is its wall-time overhead; parallel:",
        " optimized + row partitions across processes. All modes produce",
        " identical bytes, makespans, and counters.)",
    ]
    return "\n".join(lines) + "\n"


def render_hybrid(hybrid_configs: list[dict], wafer: dict | None) -> str:
    lines = [
        "Hybrid (hierarchical) vs full event simulation, row-homogeneous "
        "workloads",
        "",
        f"{'config':<20} {'blocks':>6} {'event s':>9} {'hybrid s':>9} "
        f"{'hyb x':>6} {'classes':>8}",
    ]
    for c in hybrid_configs:
        label = f"{c['strategy']} {c['rows']}x{c['cols']}"
        lines.append(
            f"{label:<20} {c['num_blocks']:>6} "
            f"{c['event_wall_s']:>9.4f} "
            f"{c['hybrid_wall_s']:>9.4f} "
            f"{c['speedup_hybrid']:>6.2f} "
            f"{c['row_classes']:>8}"
        )
    if wafer is not None:
        lines += [
            "",
            f"full wafer {wafer['rows']}x{wafer['cols']} "
            f"({wafer['num_blocks']} blocks, replication fast path): "
            f"{wafer['wall_s']:.1f} s wall, "
            f"{wafer['makespan_cycles']:.0f} cycles, "
            f"Eq.4 gap {wafer['model_gap']:+.3f}",
        ]
    lines += [
        "",
        "(hybrid: one representative row event-simulated per partition",
        " class, member rows composed analytically; bytes and makespans",
        " asserted identical to the event runs above.)",
    ]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N (default 3)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(os.cpu_count() or 1, 4),
        help="worker processes for the row-parallel mode",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small mesh only, one repeat (CI smoke; still writes JSON)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the fig7 rows config speeds up by this factor "
        "single-process",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=None,
        help="fail if the trace_level=off observability overhead of ANY "
        "benchmark config exceeds this fraction (acceptance bar: 0.05)",
    )
    parser.add_argument(
        "--wafer-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also time the full 750x994 wafer Fig 14 point through the "
        "hybrid replication fast path and fail if it takes longer than "
        "this many seconds wall clock",
    )
    parser.add_argument(
        "--json-out",
        default=os.path.normpath(
            os.path.join(
                os.path.dirname(__file__), os.pardir, "BENCH_sim_speed.json"
            )
        ),
        help="perf-trajectory JSON path",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "results", "sim_speed.txt"
        ),
        help="results table (skipped with --quick)",
    )
    add_ledger_flag(parser)
    args = parser.parse_args(argv)

    meshes = MESHES[:1] if args.quick else MESHES
    repeats = 1 if args.quick else args.repeats
    bench_t0 = time.perf_counter()
    configs = []
    for strategy in ("rows", "pipeline", "multi"):
        for _, rows, cols, per_row in meshes:
            use_cols = 1 if strategy == "rows" else cols
            configs.append(
                run_config(
                    strategy, rows, use_cols, per_row, repeats, args.jobs
                )
            )

    # Hybrid smoke rides along in every run (including --quick / CI):
    # row-homogeneous workloads on the small mesh, every strategy,
    # asserting event/hybrid byte and makespan equality.
    hybrid_configs = []
    for strategy in ("rows", "pipeline", "multi"):
        _, rows, cols, per_row = meshes[0]
        use_cols = 1 if strategy == "rows" else cols
        hybrid_configs.append(
            run_hybrid_config(strategy, rows, use_cols, per_row, repeats)
        )
    wafer = run_wafer_point() if args.wafer_budget is not None else None
    wall_s = time.perf_counter() - bench_t0

    report = render(configs, args.jobs)
    report += "\n" + render_hybrid(hybrid_configs, wafer)
    print(report, end="")

    fig7 = max(
        (c for c in configs if c["strategy"] == "rows"),
        key=lambda c: c["rows"],
    )
    worst_obs = max(configs, key=lambda c: c["obs_overhead"])
    payload = {
        "benchmark": "sim_speed",
        "block_size": BLOCK_SIZE,
        "eps": EPS,
        "jobs": args.jobs,
        "quick": args.quick,
        "configs": configs,
        "fig7_rows_speedup": fig7["speedup_optimized"],
        "fig7_rows_obs_overhead": fig7["obs_overhead"],
        "max_obs_overhead": worst_obs["obs_overhead"],
        "max_obs_overhead_config": (
            f"{worst_obs['strategy']} {worst_obs['rows']}x{worst_obs['cols']}"
        ),
        "hybrid_configs": hybrid_configs,
        "wafer": wafer,
        "wafer_budget_s": args.wafer_budget,
    }
    with open(args.json_out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    LOG.info("wrote", path=args.json_out)
    emit_bench_record(
        args.ledger,
        payload,
        config={
            "bench": "sim_speed",
            "block_size": BLOCK_SIZE,
            "eps": EPS,
            "jobs": args.jobs,
            "repeats": repeats,
            "quick": args.quick,
            "wafer": args.wafer_budget is not None,
        },
        wall_s=wall_s,
        artifacts={"json": args.json_out},
    )

    if not args.quick:
        os.makedirs(os.path.dirname(args.out), exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(report)
        LOG.info("wrote", path=args.out)

    if (
        args.min_speedup is not None
        and fig7["speedup_optimized"] < args.min_speedup
    ):
        LOG.error(
            "gate_failed",
            metric="fig7_rows_speedup",
            value=round(fig7["speedup_optimized"], 2),
            required=args.min_speedup,
        )
        return 1
    if args.max_obs_overhead is not None:
        # Every config is gated: the fixed observation cost bites hardest
        # on the smallest/fastest runs, which the fig7 (largest) config
        # never represents.
        failed = False
        for c in configs:
            if c["obs_overhead"] > args.max_obs_overhead:
                LOG.error(
                    "gate_failed",
                    metric="obs_overhead",
                    config=f"{c['strategy']} {c['rows']}x{c['cols']}",
                    value=round(c["obs_overhead"], 4),
                    required=args.max_obs_overhead,
                )
                failed = True
        if failed:
            return 1
    if wafer is not None and wafer["wall_s"] > args.wafer_budget:
        LOG.error(
            "gate_failed",
            metric="wafer_wall_s",
            value=round(wafer["wall_s"], 1),
            required=args.wafer_budget,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
