"""Microbenchmarks of the hot kernels (host-side NumPy implementations).

These are honest wall-clock benchmarks of this library's vectorized Python
kernels — they measure the *reference implementation*, not the wafer (whose
performance is modeled, see DESIGN.md).
"""

import numpy as np
import pytest

from repro import CereSZ
from repro.baselines import CuSZ, HuffmanCodec, SZ3, SZp
from repro.core.blocks import partition_blocks
from repro.core.encoding import decode_blocks, encode_blocks
from repro.core.lorenzo import lorenzo_predict, lorenzo_reconstruct
from repro.core.quantize import dequantize, prequantize

N = 1 << 20  # 1 Mi elements (4 MiB)


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(0)
    return np.cumsum(rng.normal(size=N)).astype(np.float32)


@pytest.fixture(scope="module")
def residual_blocks(field):
    blocks, _ = partition_blocks(prequantize(field, 0.01), 32)
    return lorenzo_predict(blocks)


class TestStageKernels:
    def test_prequantize(self, benchmark, field):
        benchmark(prequantize, field, 0.01)

    def test_dequantize(self, benchmark, field):
        codes = prequantize(field, 0.01)
        benchmark(dequantize, codes, 0.01)

    def test_lorenzo_predict(self, benchmark, field):
        blocks, _ = partition_blocks(prequantize(field, 0.01), 32)
        benchmark(lorenzo_predict, blocks)

    def test_lorenzo_reconstruct(self, benchmark, residual_blocks):
        benchmark(lorenzo_reconstruct, residual_blocks)

    def test_encode_blocks(self, benchmark, residual_blocks):
        benchmark(encode_blocks, residual_blocks)

    def test_decode_blocks(self, benchmark, residual_blocks):
        stream = encode_blocks(residual_blocks)
        num_blocks = residual_blocks.shape[0]
        benchmark(decode_blocks, stream, num_blocks, 32)


class TestEndToEnd:
    def test_ceresz_compress(self, benchmark, field):
        codec = CereSZ()
        result = benchmark(codec.compress, field, rel=1e-3)
        assert result.ratio > 1

    def test_ceresz_decompress(self, benchmark, field):
        codec = CereSZ()
        stream = codec.compress(field, rel=1e-3).stream
        benchmark(codec.decompress, stream)

    def test_szp_compress(self, benchmark, field):
        benchmark(SZp().compress, field, rel=1e-3)

    def test_cusz_compress(self, benchmark, field):
        benchmark(CuSZ().compress, field, rel=1e-3)

    def test_sz3_compress(self, benchmark, field):
        benchmark(SZ3().compress, field, rel=1e-3)


class TestHuffman:
    def test_encode(self, benchmark):
        rng = np.random.default_rng(1)
        symbols = rng.geometric(0.4, size=N // 4) - 1
        benchmark(HuffmanCodec().encode, symbols)

    def test_decode(self, benchmark):
        rng = np.random.default_rng(2)
        symbols = rng.geometric(0.4, size=65536) - 1
        stream = HuffmanCodec().encode(symbols)
        benchmark(HuffmanCodec().decode, stream)
