"""Fig 14: compression throughput vs WSE mesh size (REL 1e-4).

Paper: CESM-ATM and HACC, meshes from 16x16 up to the full usable
750x994 wafer; quadrupling the PE count roughly quadruples throughput at
small sizes (their 16x16 -> 32x32 observation).
"""

from benchmarks.conftest import run_once
from repro.harness import format_table
from repro.harness.figures import fig14_wse_sizes


def test_fig14(benchmark, record_result):
    points = run_once(benchmark, fig14_wse_sizes)
    text = format_table(
        ["Dataset", "WSE size", "GB/s"],
        [
            [p.dataset, f"{p.rows}x{p.cols}", f"{p.throughput_gbs:.2f}"]
            for p in points
        ],
        title="Fig 14: Compression throughput vs WSE size (REL 1e-4)",
    )
    record_result("fig14_wse_size", text)

    for dataset in {p.dataset for p in points}:
        series = [p for p in points if p.dataset == dataset]
        rates = [p.throughput_gbs for p in series]
        assert rates == sorted(rates), dataset  # monotone in mesh size
        # 16x16 -> 32x32 is ~4x (the paper's linearity observation).
        assert 3.4 <= rates[1] / rates[0] <= 4.2, dataset
        # Full wafer is the fastest configuration.
        assert series[-1].rows == 750 and series[-1].cols == 994
