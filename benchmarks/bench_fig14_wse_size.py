"""Fig 14: compression throughput vs WSE mesh size (REL 1e-4).

Paper: CESM-ATM and HACC, meshes from 16x16 up to the full usable
750x994 wafer; quadrupling the PE count roughly quadruples throughput at
small sizes (their 16x16 -> 32x32 observation).

Two reproductions of the same figure:

* ``test_fig14`` — the analytic curve (Eqs 2-4 driven by measured
  workload statistics), the paper's own modelling route.
* ``test_fig14_simulated`` — every mesh *run* on the hybrid simulator
  (one representative row event-simulated per homogeneous class, the
  rest replicated exactly), including the full 750x994 wafer and one
  mesh *past* the paper's largest — something the pure event simulator
  cannot reach in bench-able time.
"""

from benchmarks.conftest import run_once
from repro.config import WSE_USABLE_COLS, WSE_USABLE_ROWS
from repro.harness import format_table
from repro.harness.figures import fig14_wse_sizes, fig14_wse_sizes_simulated

#: Wall-clock ceiling for the single most expensive simulated point (the
#: full wafer). Generous for shared CI runners; a quiet box does it in
#: ~15 s.
WAFER_BUDGET_S = 60.0

#: One mesh beyond the paper's largest: the hybrid path has no wafer cap
#: (replication cost is per-class, not per-row), so the sweep can ask
#: what a taller-than-CS-2 fabric would do.
BEYOND_WAFER = (2 * WSE_USABLE_ROWS, WSE_USABLE_COLS)


def test_fig14(benchmark, record_result):
    points = run_once(benchmark, fig14_wse_sizes)
    text = format_table(
        ["Dataset", "WSE size", "GB/s"],
        [
            [p.dataset, f"{p.rows}x{p.cols}", f"{p.throughput_gbs:.2f}"]
            for p in points
        ],
        title="Fig 14: Compression throughput vs WSE size (REL 1e-4)",
    )
    record_result("fig14_wse_size", text)

    for dataset in {p.dataset for p in points}:
        series = [p for p in points if p.dataset == dataset]
        rates = [p.throughput_gbs for p in series]
        assert rates == sorted(rates), dataset  # monotone in mesh size
        # 16x16 -> 32x32 is ~4x (the paper's linearity observation).
        assert 3.4 <= rates[1] / rates[0] <= 4.2, dataset
        # The full wafer is part of the sweep (it need not be the last
        # point: the sweep may extend past the paper's largest mesh).
        assert any(
            p.rows == WSE_USABLE_ROWS and p.cols == WSE_USABLE_COLS
            for p in series
        ), dataset


def test_fig14_simulated(benchmark, record_result):
    sizes = (
        16,
        32,
        64,
        128,
        256,
        512,
        (WSE_USABLE_ROWS, WSE_USABLE_COLS),
        BEYOND_WAFER,
    )
    points = run_once(
        benchmark, fig14_wse_sizes_simulated, sizes=sizes
    )
    text = format_table(
        ["Dataset", "WSE size", "GB/s", "Eq.4 gap", "classes", "wall s"],
        [
            [
                p.dataset,
                f"{p.rows}x{p.cols}",
                f"{p.throughput_gbs:.2f}",
                f"{p.model_gap:+.3f}",
                str(p.row_classes),
                f"{p.wall_seconds:.2f}",
            ]
            for p in points
        ],
        title="Fig 14 (hybrid-simulated): throughput vs WSE size "
        "(REL 1e-4)",
    )
    record_result("fig14_wse_size_simulated", text)

    rates = [p.throughput_gbs for p in points]
    assert rates == sorted(rates)  # monotone in mesh size
    wafer = next(
        p
        for p in points
        if p.rows == WSE_USABLE_ROWS and p.cols == WSE_USABLE_COLS
    )
    # The whole point of the hybrid path: the full wafer in seconds.
    assert wafer.wall_seconds < WAFER_BUDGET_S, wafer.wall_seconds
    # Homogeneous tiled rows collapse to a single partition class.
    assert all(p.row_classes == 1 for p in points)
    # Eq. 4 cross-check. Each mesh runs its blocks in ONE round, so the
    # steady-state model overstates the relay term as columns grow (in a
    # single round the eastern PEs relay far fewer than TC blocks — the
    # fill/drain transient Eq. 4 folds into one term). Mid-size meshes
    # sit within a few percent; the envelope stays bounded everywhere.
    for p in points:
        assert abs(p.model_gap) <= 0.5, (p.rows, p.cols, p.model_gap)
        if 32 * 32 <= p.rows * p.cols <= 256 * 256:
            assert abs(p.model_gap) <= 0.15, (p.rows, p.cols, p.model_gap)
    # Past-the-wafer extrapolation: still monotone, and the gap is a
    # function of the row workload alone — adding rows must not move it
    # (rows are exact replicas, so makespan and prediction scale alike).
    beyond = points[-1]
    assert (beyond.rows, beyond.cols) == BEYOND_WAFER
    assert beyond.throughput_gbs > wafer.throughput_gbs
    assert abs(beyond.model_gap - wafer.model_gap) < 1e-9
