"""Table 5: compression ratios, 5 compressors x 6 datasets x 3 REL bounds.

Every ratio is measured from a real byte stream produced by the
reimplemented codec on the synthetic fields. The paper's structural facts
asserted below:

* SZ (SZ3) has the highest average ratio on every dataset/bound;
* CereSZ trails SZp/cuSZp (4-byte vs 1-byte block headers), with the gap
  shrinking as the bound tightens;
* CereSZ is capped at 32x and SZp/cuSZp at 128x;
* ratios fall monotonically as the bound tightens.
"""

from collections import defaultdict

from benchmarks.conftest import run_once
from repro.harness import format_table
from repro.harness.tables import (
    table5_compression_ratio,
    table5_predictor_comparison,
)

#: Paper Table 5 averages for side-by-side printing (CereSZ rows).
PAPER_CERESZ_AVG = {
    ("CESM-ATM", 1e-2): 8.73, ("CESM-ATM", 1e-3): 6.49, ("CESM-ATM", 1e-4): 5.11,
    ("HACC", 1e-2): 6.82, ("HACC", 1e-3): 4.05, ("HACC", 1e-4): 2.83,
    ("Hurricane", 1e-2): 17.10, ("Hurricane", 1e-3): 12.57, ("Hurricane", 1e-4): 9.64,
    ("NYX", 1e-2): 20.22, ("NYX", 1e-3): 14.05, ("NYX", 1e-4): 9.61,
    ("QMCPack", 1e-2): 14.63, ("QMCPack", 1e-3): 7.16, ("QMCPack", 1e-4): 4.23,
    ("RTM", 1e-2): 23.46, ("RTM", 1e-3): 17.73, ("RTM", 1e-4): 12.87,
}


def test_table5(benchmark, record_result):
    rows = run_once(benchmark, table5_compression_ratio)
    lines = []
    for r in rows:
        paper = (
            PAPER_CERESZ_AVG.get((r.dataset, r.rel), "")
            if r.compressor == "CereSZ"
            else ""
        )
        lines.append(
            [r.compressor, r.dataset, f"{r.rel:g}",
             f"{r.min:.2f}~{r.max:.2f}", f"{r.avg:.2f}", paper]
        )
    text = format_table(
        ["Compressor", "Dataset", "REL", "range", "avg", "paper avg"],
        lines,
        title="Table 5: Compression ratio (measured streams, synthetic data)",
    )
    record_result("table5_compression_ratio", text)

    by_key = {(r.compressor, r.dataset, r.rel): r for r in rows}
    datasets = sorted({r.dataset for r in rows})
    bounds = sorted({r.rel for r in rows})
    for dataset in datasets:
        for rel in bounds:
            sz = by_key[("SZ", dataset, rel)]
            ceresz = by_key[("CereSZ", dataset, rel)]
            szp = by_key[("SZp", dataset, rel)]
            cuszp = by_key[("cuSZp", dataset, rel)]
            assert sz.avg > ceresz.avg, (dataset, rel)
            assert szp.avg >= ceresz.avg * 0.99, (dataset, rel)
            assert abs(szp.avg - cuszp.avg) / szp.avg < 0.01
            assert ceresz.max <= 32.5
            assert szp.max <= 128.5

    # Monotone in the bound for the block compressors.
    trend = defaultdict(list)
    for r in rows:
        if r.compressor in ("CereSZ", "SZp"):
            trend[(r.compressor, r.dataset)].append((r.rel, r.avg))
    for series in trend.values():
        series.sort(reverse=True)  # loosest bound first
        avgs = [a for _, a in series]
        assert all(x >= y for x, y in zip(avgs, avgs[1:]))

    # CereSZ averages within 2x of the paper's on every cell (shape match).
    for (dataset, rel), paper_avg in PAPER_CERESZ_AVG.items():
        ours = by_key[("CereSZ", dataset, rel)].avg
        assert 0.4 <= ours / paper_avg <= 2.5, (dataset, rel, ours, paper_avg)


def test_table5_predictors(benchmark, record_result):
    """Predictor mode: the registry axis on the Table 5 measurement loop."""
    rows = run_once(benchmark, table5_predictor_comparison)
    record_result(
        "table5_predictor_comparison",
        format_table(
            ["Compressor", "Dataset", "REL", "range", "avg", "fields"],
            [
                [r.compressor, r.dataset, f"{r.rel:g}",
                 f"{r.min:.2f}~{r.max:.2f}", f"{r.avg:.2f}", r.num_fields]
                for r in rows
            ],
            title="Table 5 (predictor mode): CereSZ per registered predictor",
        ),
    )

    by_key = {(r.compressor, r.dataset): r.avg for r in rows}

    def ratio(pred, dataset):
        return by_key[(f"CereSZ[{pred}]", dataset)]

    # Matching-dimensional Lorenzo beats the paper's 1-D form on the 2-D
    # dataset and the smooth 3-D ones; NYX is the counterexample where
    # the rough field hands the win back to lorenzo1d.
    assert ratio("lorenzo2d", "CESM-ATM") > ratio("lorenzo1d", "CESM-ATM")
    for dataset in ("Hurricane", "QMCPack", "RTM"):
        assert ratio("lorenzo3d", dataset) > ratio("lorenzo1d", dataset), dataset
    assert ratio("lorenzo1d", "NYX") > ratio("lorenzo3d", "NYX")
    # On >=3-D data the nd predictor is the all-axes operator = lorenzo3d
    # (streams differ by one header byte: legacy nd flag vs explicit
    # predictor-tag byte — hence the tolerance, not exact equality).
    for dataset in ("Hurricane", "QMCPack", "RTM", "NYX"):
        nd, l3 = ratio("nd", dataset), ratio("lorenzo3d", dataset)
        assert abs(nd - l3) / l3 < 1e-3, (dataset, nd, l3)
