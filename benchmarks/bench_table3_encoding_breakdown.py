"""Table 3: Sign / Max / GetLength / Bit-shuffle breakdown of encoding.

Paper: fixed sub-stages ~1030-1390 cycles, Bit-shuffle ~1977 cycles per
effective bit (33609/17 = 25675/13 = 23694/12).
"""

from benchmarks.conftest import run_once
from repro.harness import format_table
from repro.harness.tables import table3_encoding_breakdown


def test_table3(benchmark, record_result):
    rows = run_once(benchmark, table3_encoding_breakdown)
    text = format_table(
        ["Dataset", "fl", "FL Encd.", "Sign", "Max", "GetLength",
         "Bit-shuffle", "paper (FL/S/M/GL/BS)"],
        [
            [r.dataset, r.fixed_length, round(r.fl_encode), round(r.sign),
             round(r.max), round(r.get_length), round(r.bit_shuffle),
             r.paper]
            for r in rows
        ],
        title="Table 3: Breakdown cycles for Fixed-Length Encoding",
    )
    record_result("table3_encoding_breakdown", text)
    per_bit = {round(r.bit_shuffle / r.fixed_length, 3) for r in rows}
    assert len(per_bit) == 1  # uniform per-bit cost, the paper's observation
    for r in rows:
        assert r.bit_shuffle / r.fl_encode > 0.8  # Bit-shuffle dominates
