"""Fig 13: compression throughput of 1/2/4/8-PE pipelines (REL 1e-4).

Paper: the 1-PE pipeline wins on QMCPack and Hurricane; longer pipelines
lose to the imperfect stage decomposition and the C2 forwarding overhead.
The bottleneck group used here comes from the *actual* Algorithm 1
distribution at each length.
"""

from benchmarks.conftest import run_once
from repro.harness import format_table
from repro.harness.figures import (
    fig13_pipeline_lengths,
    plan_placement_summary,
)


def test_fig13(benchmark, record_result):
    points = run_once(benchmark, fig13_pipeline_lengths)
    text = format_table(
        ["Dataset", "Pipeline", "GB/s"],
        [
            [p.dataset, f"{p.pipeline_length}-PE", f"{p.throughput_gbs:.1f}"]
            for p in points
        ],
        title="Fig 13: Compression throughput vs pipeline length (REL 1e-4)",
    )
    placement = plan_placement_summary(
        strategy="multi", rows=1, cols=4, pipeline_length=2, blocks=8
    )
    record_result("fig13_pipeline_length", text + "\n\n" + placement)
    assert "strategy=staged" in placement  # pl=2 lowers to staged pipelines

    for dataset in {p.dataset for p in points}:
        series = sorted(
            (p.pipeline_length, p.throughput_gbs)
            for p in points
            if p.dataset == dataset
        )
        rates = [r for _, r in series]
        assert rates[0] == max(rates), dataset  # 1-PE optimal
        assert all(a >= b for a, b in zip(rates, rates[1:])), dataset
