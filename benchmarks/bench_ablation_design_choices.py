"""Ablations of CereSZ's stated design choices (Section 3 and 5.1.1).

1. **Block size** — the paper picks 32 "as it yields the highest
   compression ratio among the options considered" while respecting the
   16-multiple transfer constraint. We sweep 8/16/32/64/128 and record the
   ratio and the modeled per-block cycle cost.
2. **Header width** — 4-byte (CereSZ) vs 1-byte (SZp) block headers: the
   ratio penalty of the wafer's 32-bit message constraint, and how it
   shrinks as the bound tightens (the paper's Section 5.3 argument).
3. **Predictor choice** — 1D blocked Lorenzo (CereSZ) vs N-D Lorenzo
   (cuSZ-style): what CereSZ gives up by preferring the
   coalesced-access-friendly predictor.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro import CereSZ
from repro.baselines import CuSZ
from repro.datasets import generate_field
from repro.harness import format_table


@pytest.fixture(scope="module")
def fields():
    return {
        "NYX.velocity_x": generate_field("NYX", 3),
        "CESM-ATM.f00": generate_field("CESM-ATM", 0),
        "HACC.xx": generate_field("HACC", 0),
    }


def _block_size_sweep(fields):
    rows = []
    for name, field in fields.items():
        for block in (8, 16, 32, 64, 128):
            result = CereSZ(block_size=block).compress(field, rel=1e-3)
            rows.append((name, block, result.ratio))
    return rows


def test_block_size_ablation(benchmark, record_result, fields):
    rows = run_once(benchmark, _block_size_sweep, fields)
    text = format_table(
        ["Field", "block size", "ratio"],
        [[n, b, f"{r:.2f}"] for n, b, r in rows],
        title="Ablation: block size (paper picks 32)",
    )
    record_result("ablation_block_size", text)
    # 32 must be at or near the best ratio on typical fields: within 10%
    # of the per-field maximum.
    by_field = {}
    for name, block, ratio in rows:
        by_field.setdefault(name, {})[block] = ratio
    for name, ratios in by_field.items():
        assert ratios[32] >= 0.85 * max(ratios.values()), name


def _header_width_sweep(fields):
    rows = []
    for name, field in fields.items():
        for rel in (1e-2, 1e-3, 1e-4):
            r4 = CereSZ(header_width=4).compress(field, rel=rel).ratio
            r1 = CereSZ(header_width=1).compress(field, rel=rel).ratio
            rows.append((name, rel, r4, r1, r1 / r4))
    return rows


def test_header_width_ablation(benchmark, record_result, fields):
    rows = run_once(benchmark, _header_width_sweep, fields)
    text = format_table(
        ["Field", "REL", "4-byte hdr", "1-byte hdr", "penalty"],
        [
            [n, f"{rel:g}", f"{a:.2f}", f"{b:.2f}", f"{p:.3f}x"]
            for n, rel, a, b, p in rows
        ],
        title="Ablation: per-block header width (wafer 32-bit constraint)",
    )
    record_result("ablation_header_width", text)
    by_field = {}
    for name, rel, r4, r1, penalty in rows:
        assert penalty >= 0.999  # the 1-byte header never loses
        by_field.setdefault(name, []).append((rel, penalty))
    # Paper 5.3: the penalty is relieved as the bound tightens.
    for name, series in by_field.items():
        series.sort(reverse=True)  # loosest first
        penalties = [p for _, p in series]
        assert penalties[-1] <= penalties[0] + 1e-9, name


def _predictor_sweep(fields):
    rows = []
    for name, field in fields.items():
        ceresz = CereSZ().compress(field, rel=1e-3).ratio
        cusz = CuSZ().compress(field, rel=1e-3).ratio
        rows.append((name, ceresz, cusz))
    return rows


def test_predictor_ablation(benchmark, record_result, fields):
    rows = run_once(benchmark, _predictor_sweep, fields)
    text = format_table(
        ["Field", "1D blocked Lorenzo (CereSZ)", "N-D Lorenzo+Huffman (cuSZ)"],
        [[n, f"{a:.2f}", f"{b:.2f}"] for n, a, b in rows],
        title="Ablation: predictor choice (throughput-first vs ratio-first)",
    )
    record_result("ablation_predictor", text)
    multi_dim = [r for r in rows if "HACC" not in r[0]]
    # On multi-dimensional fields the N-D predictor wins on ratio — the
    # trade the paper knowingly makes for throughput.
    assert any(b > a for _, a, b in multi_dim)
