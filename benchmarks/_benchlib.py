"""Shared plumbing for the benchmark scripts: ledger emission and logs.

Every headline bench writes its payload JSON as before (the perf
trajectory the repo commits) and, with ``--ledger``, *also* appends one
provenance-stamped RunRecord whose ``values`` are the payload's headline
metrics — extracted by the same :func:`repro.obs.regress.headline_values`
adapter ``ceresz report`` uses to load committed baselines, so the two
sides of every comparison agree on names by construction.

Status lines go through :mod:`repro.obs.log` (machine-parseable
``key=value`` records on stderr) instead of bare prints; the human
results table stays on stdout untouched.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.obs.ledger import emit  # noqa: E402
from repro.obs.log import get_logger  # noqa: E402
from repro.obs.regress import headline_values  # noqa: E402

__all__ = ["add_ledger_flag", "emit_bench_record", "get_logger"]


def add_ledger_flag(parser) -> None:
    parser.add_argument(
        "--ledger", nargs="?", const=True, default=None, metavar="PATH",
        help="append this run's headline metrics to the run ledger "
        "(default path .ceresz/ledger.jsonl, or $CERESZ_LEDGER; "
        "`ceresz report --gate` analyzes it)",
    )


def emit_bench_record(
    ledger, payload: dict, *, config: dict, wall_s: float,
    artifacts: dict | None = None,
):
    """One RunRecord for a finished bench run; no-op when ledger is off."""
    if ledger is None:
        return None
    record = emit(
        ledger,
        "bench",
        payload["benchmark"],
        config,
        timings={"wall_s": wall_s},
        values=headline_values(payload),
        artifacts=dict(artifacts or {}),
    )
    get_logger(f"bench.{payload['benchmark']}").info(
        "ledger_appended",
        fingerprint=record.fingerprint,
        metrics=len(record.values),
    )
    return record
