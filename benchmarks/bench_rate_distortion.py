"""Rate-distortion curves (paper Section 5.4) and the predictor sweep.

The paper discusses rate-distortion without a dedicated figure: compressors
sharing the pre-quantization design have the *same PSNR column* and differ
only in bit rate, so the curve ordering is the ratio ordering. This bench
regenerates the curves on NYX velocity_x for the pre-quantization family
plus SZ and asserts that structure.

The second half sweeps the registered predictors over smooth 2-D/3-D
synthetic fields at shared absolute bounds: at equal eps, ``lorenzo2d``
must beat ``lorenzo1d`` on the 2-D field and ``lorenzo3d`` must beat it on
the 3-D field — the ratio the paper's wafer-locality trade (Section 3)
leaves on the table. Runs standalone for the CI smoke::

    PYTHONPATH=src python benchmarks/bench_rate_distortion.py --quick
"""

import os
import sys

if __package__ in (None, ""):  # script mode: repo root + src onto sys.path
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )

import numpy as np  # noqa: E402

from benchmarks._benchlib import (  # noqa: E402
    add_ledger_flag,
    emit_bench_record,
    get_logger,
)
from benchmarks.conftest import run_once  # noqa: E402
from repro.baselines.base import get_compressor  # noqa: E402
from repro.core.compressor import CereSZ  # noqa: E402
from repro.core.predictors import predictor_names  # noqa: E402
from repro.datasets import generate_field  # noqa: E402
from repro.harness import format_table  # noqa: E402
from repro.metrics.errorbound import max_abs_error  # noqa: E402
from repro.metrics.ratedistortion import rate_distortion_curve  # noqa: E402

LOG = get_logger("bench.rate_distortion")

BOUNDS = (1e-2, 1e-3, 1e-4)
CODECS = ("CereSZ", "cuSZp", "cuSZ", "SZ")

#: Shared absolute bounds for the predictor sweep ("equal eps" is the
#: whole point: every predictor sees the identical quantization).
PREDICTOR_BOUNDS = (1e-2, 1e-3, 1e-4)


def _smooth_field_2d(shape=(192, 256)) -> np.ndarray:
    x, y = np.meshgrid(
        np.linspace(0.0, 1.0, shape[0]),
        np.linspace(0.0, 1.0, shape[1]),
        indexing="ij",
    )
    f = np.sin(3 * np.pi * x) * np.cos(2 * np.pi * y) + 0.5 * x * y
    return f.astype(np.float32)


def _smooth_field_3d(shape=(40, 48, 56)) -> np.ndarray:
    x, y, z = np.meshgrid(
        *(np.linspace(0.0, 1.0, s) for s in shape), indexing="ij"
    )
    f = (
        np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y) * np.sin(np.pi * z)
        + x * y
        + 0.3 * z
    )
    return f.astype(np.float32)


def predictor_comparison(quick: bool = False) -> list[dict]:
    """Ratio of every registered predictor on smooth 2-D/3-D fields.

    Each row: field name, predictor, eps, measured ratio, measured max
    error (always within eps — the bound is predictor-independent).
    """
    fields = (
        ("smooth2d", _smooth_field_2d((96, 128) if quick else (192, 256))),
        ("smooth3d", _smooth_field_3d((24, 32, 40) if quick else (40, 48, 56))),
    )
    bounds = PREDICTOR_BOUNDS[:1] if quick else PREDICTOR_BOUNDS
    rows = []
    for fname, field in fields:
        for pred in predictor_names():
            codec = CereSZ(predictor=pred)
            for eps in bounds:
                result = codec.compress(field, eps=eps)
                back = codec.decompress(result.stream)
                rows.append(
                    {
                        "field": fname,
                        "ndim": field.ndim,
                        "predictor": pred,
                        "eps": eps,
                        "ratio": result.ratio,
                        "max_error": float(max_abs_error(field, back)),
                    }
                )
    return rows


def _predictor_table(rows: list[dict]) -> str:
    return format_table(
        ["Field", "Predictor", "eps", "ratio", "max err"],
        [
            [r["field"], r["predictor"], f"{r['eps']:g}",
             f"{r['ratio']:.2f}", f"{r['max_error']:.2e}"]
            for r in rows
        ],
        title="Predictor sweep: ratio at equal eps on smooth fields",
    )


def _check_predictor_rows(rows: list[dict]) -> None:
    by_key = {(r["field"], r["predictor"], r["eps"]): r for r in rows}
    bounds = sorted({r["eps"] for r in rows})
    for r in rows:
        # Error-bound compliance is predictor-independent.
        assert r["max_error"] <= r["eps"] * (1 + 1e-9), r
    for eps in bounds:
        # The tentpole's acceptance bar: higher-dimensional Lorenzo beats
        # the paper's 1-D form on matching-dimensional smooth fields.
        l1 = by_key[("smooth2d", "lorenzo1d", eps)]["ratio"]
        l2 = by_key[("smooth2d", "lorenzo2d", eps)]["ratio"]
        assert l2 > l1, (eps, l1, l2)
        l1 = by_key[("smooth3d", "lorenzo1d", eps)]["ratio"]
        l3 = by_key[("smooth3d", "lorenzo3d", eps)]["ratio"]
        assert l3 > l1, (eps, l1, l3)
        # nd == lorenzo3d on 3-D data (same operator over all three axes;
        # streams differ by one header byte — nd has a legacy flag bit,
        # lorenzo3d an explicit predictor-tag byte — hence the tolerance).
        nd = by_key[("smooth3d", "nd", eps)]["ratio"]
        assert abs(nd - l3) / l3 < 1e-3, (eps, nd, l3)


def _curves():
    field = generate_field("NYX", 3)  # velocity_x
    return {
        name: rate_distortion_curve(get_compressor(name), field, BOUNDS)
        for name in CODECS
    }


def test_rate_distortion(benchmark, record_result):
    curves = run_once(benchmark, _curves)
    rows = []
    for name, points in curves.items():
        for rel, p in zip(BOUNDS, points):
            rows.append(
                [name, f"{rel:g}", f"{p.bit_rate:.3f}", f"{p.psnr:.2f}"]
            )
    record_result(
        "rate_distortion",
        format_table(
            ["Compressor", "REL", "bits/value", "PSNR dB"],
            rows,
            title="Rate-distortion on NYX velocity_x (Section 5.4)",
        ),
    )

    # Pre-quantization family: identical PSNR at every bound.
    for i, rel in enumerate(BOUNDS):
        psnrs = {
            name: curves[name][i].psnr for name in ("CereSZ", "cuSZp", "cuSZ")
        }
        assert max(psnrs.values()) - min(psnrs.values()) < 1e-9, rel
        # cuSZp's curve sits left of CereSZ's (lower rate, same quality).
        assert curves["cuSZp"][i].bit_rate < curves["CereSZ"][i].bit_rate
        # SZ (different predictor) reaches at least the same quality at a
        # lower rate: the ratio champion.
        assert curves["SZ"][i].bit_rate < curves["CereSZ"][i].bit_rate

    # Monotone: tighter bound, higher quality, more bits (every codec).
    for name in CODECS:
        rates = [p.bit_rate for p in curves[name]]
        psnrs = [p.psnr for p in curves[name]]
        assert rates == sorted(rates), name
        assert psnrs == sorted(psnrs), name


def test_predictor_rate_distortion(benchmark, record_result):
    rows = run_once(benchmark, predictor_comparison)
    record_result("rate_distortion_predictors", _predictor_table(rows))
    _check_predictor_rows(rows)


def main(argv=None) -> int:
    import argparse
    import json
    import time

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small fields, loosest bound only (CI smoke; still writes "
        "the JSON artifact)",
    )
    parser.add_argument(
        "--json-out",
        default=os.path.normpath(
            os.path.join(
                os.path.dirname(__file__),
                os.pardir,
                "BENCH_rate_distortion.json",
            )
        ),
        help="predictor-sweep JSON artifact path",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "results",
            "rate_distortion_predictors.txt",
        ),
        help="results file (ignored with --quick)",
    )
    add_ledger_flag(parser)
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    rows = predictor_comparison(quick=args.quick)
    wall_s = time.perf_counter() - t0
    report = _predictor_table(rows)
    print(report)
    _check_predictor_rows(rows)
    print("predictor ordering assertions hold")

    payload = {
        "benchmark": "rate_distortion_predictors",
        "quick": args.quick,
        "rows": rows,
    }
    with open(args.json_out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    LOG.info("wrote", path=args.json_out)
    emit_bench_record(
        args.ledger,
        payload,
        config={
            "bench": "rate_distortion_predictors",
            "bounds": list(
                PREDICTOR_BOUNDS[:1] if args.quick else PREDICTOR_BOUNDS
            ),
            "quick": args.quick,
        },
        wall_s=wall_s,
        artifacts={"json": args.json_out},
    )

    if not args.quick:
        os.makedirs(os.path.dirname(args.out), exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
        LOG.info("wrote", path=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
