"""Rate-distortion curves (paper Section 5.4).

The paper discusses rate-distortion without a dedicated figure: compressors
sharing the pre-quantization design have the *same PSNR column* and differ
only in bit rate, so the curve ordering is the ratio ordering. This bench
regenerates the curves on NYX velocity_x for the pre-quantization family
plus SZ and asserts that structure.
"""

from benchmarks.conftest import run_once
from repro.baselines.base import get_compressor
from repro.datasets import generate_field
from repro.harness import format_table
from repro.metrics.ratedistortion import rate_distortion_curve

BOUNDS = (1e-2, 1e-3, 1e-4)
CODECS = ("CereSZ", "cuSZp", "cuSZ", "SZ")


def _curves():
    field = generate_field("NYX", 3)  # velocity_x
    return {
        name: rate_distortion_curve(get_compressor(name), field, BOUNDS)
        for name in CODECS
    }


def test_rate_distortion(benchmark, record_result):
    curves = run_once(benchmark, _curves)
    rows = []
    for name, points in curves.items():
        for rel, p in zip(BOUNDS, points):
            rows.append(
                [name, f"{rel:g}", f"{p.bit_rate:.3f}", f"{p.psnr:.2f}"]
            )
    record_result(
        "rate_distortion",
        format_table(
            ["Compressor", "REL", "bits/value", "PSNR dB"],
            rows,
            title="Rate-distortion on NYX velocity_x (Section 5.4)",
        ),
    )

    # Pre-quantization family: identical PSNR at every bound.
    for i, rel in enumerate(BOUNDS):
        psnrs = {
            name: curves[name][i].psnr for name in ("CereSZ", "cuSZp", "cuSZ")
        }
        assert max(psnrs.values()) - min(psnrs.values()) < 1e-9, rel
        # cuSZp's curve sits left of CereSZ's (lower rate, same quality).
        assert curves["cuSZp"][i].bit_rate < curves["CereSZ"][i].bit_rate
        # SZ (different predictor) reaches at least the same quality at a
        # lower rate: the ratio champion.
        assert curves["SZ"][i].bit_rate < curves["CereSZ"][i].bit_rate

    # Monotone: tighter bound, higher quality, more bits (every codec).
    for name in CODECS:
        rates = [p.bit_rate for p in curves[name]]
        psnrs = [p.psnr for p in curves[name]]
        assert rates == sorted(rates), name
        assert psnrs == sorted(psnrs), name
