"""Fig 10: (a) per-PE relay time vs columns; (b) execution time vs length.

(a) cross-checks Eq. 2's TC*C1 line against the discrete-event simulator
running the actual Fig 9 relay program on a 1-row mesh (QMCPack data).
(b) is Eq. 3's C/pl + (pl-1)*C2 curve.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness import format_table
from repro.harness.figures import (
    fig10_relay_and_execution,
    plan_placement_summary,
)
from repro.wse.cost import PAPER_CYCLE_MODEL


def test_fig10(benchmark, record_result):
    profile = run_once(benchmark, fig10_relay_and_execution)
    text_a = format_table(
        ["TC (cols)", "relay/PE (Eq.2: TC*C1)", "relay/PE (simulated)", "blocks relayed"],
        list(
            zip(
                profile.cols_swept,
                [round(x) for x in profile.relay_cycles_analytic],
                [round(x) for x in profile.relay_cycles_simulated],
                profile.blocks_relayed,
            )
        ),
        title="Fig 10a: Relay time per PE vs number of columns (QMCPack)",
    )
    text_b = format_table(
        ["pipeline length", "execution cycles per PE (Eq.3)"],
        list(
            zip(
                profile.pipeline_lengths,
                [round(x) for x in profile.execution_cycles_per_pe],
            )
        ),
        title="Fig 10b: Execution time per PE vs pipeline length",
    )
    placement = plan_placement_summary(
        strategy="multi", rows=1, cols=4, blocks=8
    )
    record_result(
        "fig10_relay_profile", text_a + "\n\n" + text_b + "\n\n" + placement
    )
    assert "strategy=multi" in placement

    # The Fig 9 relay schedule: 2 rounds, PE i forwards TC-1-i blocks each.
    for tc, relayed in zip(profile.cols_swept, profile.blocks_relayed):
        assert relayed == tc * (tc - 1)

    # (a) both series are linear in TC.
    sim = np.asarray(profile.relay_cycles_simulated)
    cols = np.asarray(profile.cols_swept, dtype=float)
    slope = np.polyfit(cols, sim, 1)[0]
    assert abs(slope - PAPER_CYCLE_MODEL.c1_relay) < 0.1 * (
        PAPER_CYCLE_MODEL.c1_relay
    )
    # (b) execution time falls ~1/pl before the forwarding term bites.
    ex = profile.execution_cycles_per_pe
    assert ex[1] < ex[0] and ex[2] < ex[1]
