"""Shared infrastructure for the table/figure regeneration benchmarks.

Every bench regenerates one paper table or figure: it times the harness
function once (``benchmark.pedantic`` with a single round — these are
experiment runs, not microbenchmarks) and writes the paper-style rendering
to ``benchmarks/results/<name>.txt`` so the regenerated artifacts survive
the run. Kernel microbenchmarks (``bench_kernels.py``) use the default
repeated timing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write one regenerated table/figure to the results directory."""

    def write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")

    return write


def run_once(benchmark, fn, *args, **kwargs):
    """Time an experiment harness exactly once (no warmup repetitions)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
