"""Table 4: the dataset inventory (paper dims + synthetic stand-in dims)."""

from benchmarks.conftest import run_once
from repro.harness import format_table
from repro.harness.tables import table4_datasets


def test_table4(benchmark, record_result):
    rows = run_once(benchmark, table4_datasets)
    text = format_table(
        ["Dataset", "No. of Fields", "Dim. per Field (paper)",
         "Dim. per Field (synthetic)", "Domain"],
        [
            [r["dataset"], r["num_fields"], r["paper_shape"],
             r["synthetic_shape"], r["domain"]]
            for r in rows
        ],
        title="Table 4: Datasets for evaluating CereSZ",
    )
    record_result("table4_datasets", text)
    assert len(rows) == 6
    assert sum(r["num_fields"] for r in rows) == 79 + 13 + 2 + 6 + 36 + 6
