"""Fig 15: data quality parity with cuSZp on NYX velocity_x (REL 1e-4).

Paper: CereSZ and cuSZp share the pre-quantization design, so their
reconstructions — and hence PSNR (84.77 dB) and SSIM (0.9996) — are
identical; only the ratio differs (3.10 vs 3.35). The PSNR value itself is
analytic for uniform quantization noise, which is why it reproduces
exactly on synthetic data.
"""

from benchmarks.conftest import run_once
from repro.baselines.base import get_compressor
from repro.datasets import generate_field
from repro.harness.figures import fig15_quality
from repro.metrics.visualize import error_map, slice_of, write_pgm


def test_fig15(benchmark, record_result, results_dir):
    q = run_once(benchmark, fig15_quality)
    text = "\n".join(
        [
            "Fig 15: CereSZ vs cuSZp quality on NYX velocity_x (REL 1e-4)",
            f"  reconstructions identical : {q.reconstructions_identical}",
            f"  PSNR  CereSZ {q.ceresz_psnr:.2f} dB | cuSZp "
            f"{q.cuszp_psnr:.2f} dB | paper {q.paper_psnr} dB",
            f"  SSIM  CereSZ {q.ceresz_ssim:.6f} | cuSZp "
            f"{q.cuszp_ssim:.6f} | paper {q.paper_ssim}",
            f"  ratio CereSZ {q.ceresz_ratio:.2f} | cuSZp "
            f"{q.cuszp_ratio:.2f} | paper 3.10 vs 3.35",
        ]
    )
    record_result("fig15_quality", text)

    # Emit the visual comparison itself: middle slice of velocity_x,
    # original vs reconstruction vs (scaled) error map — the paper's
    # side-by-side rendering, as PGM images next to the text artifact.
    field = generate_field("NYX", 3)
    codec = get_compressor("CereSZ")
    restored = codec.decompress(codec.compress(field, rel=1e-4).stream)
    write_pgm(
        results_dir / "fig15_velocity_x_original.pgm", slice_of(field, 2)
    )
    write_pgm(
        results_dir / "fig15_velocity_x_ceresz.pgm", slice_of(restored, 2)
    )
    write_pgm(
        results_dir / "fig15_velocity_x_error.pgm",
        error_map(slice_of(field, 2), slice_of(restored, 2)),
    )

    assert q.reconstructions_identical
    assert abs(q.ceresz_psnr - 84.77) < 0.35
    assert q.ceresz_ssim > 0.999
    assert q.cuszp_ratio > q.ceresz_ratio  # the 4-byte-header penalty
