"""Table 1: execution cycles for the three compression steps.

Paper values (CESM-ATM / HACC / QMCPack): Pre-Quant 6051/6101/6111,
Lorenzo 975/975/975, FL-Encoding 37124/29181/27188. Ours come from the
calibrated cycle model evaluated at the fixed lengths measured on the
synthetic datasets.
"""

from benchmarks.conftest import run_once
from repro.harness import format_table
from repro.harness.tables import table1_stage_cycles


def test_table1(benchmark, record_result):
    rows = run_once(benchmark, table1_stage_cycles)
    text = format_table(
        ["Dataset", "fl", "Pre-Quant.", "Loren. Pred.", "FL Encd.",
         "paper (PQ/LP/FL)"],
        [
            [r.dataset, r.fixed_length, round(r.prequant), round(r.lorenzo),
             round(r.fl_encode), r.paper]
            for r in rows
        ],
        title="Table 1: Execution cycles for three steps (one data block)",
    )
    record_result("table1_stage_cycles", text)
    for r in rows:
        assert r.fl_encode > r.prequant > r.lorenzo  # Table 1's ordering
        assert abs(r.prequant - r.paper[0]) / r.paper[0] < 0.03
        assert r.lorenzo == r.paper[1]
