"""Fig 11: compression throughput, 5 compressors x 6 datasets x 3 bounds.

CereSZ bars come from the wafer model (512x512 PEs, pipeline length 1) fed
by workload statistics measured on the synthetic fields; baselines come
from the calibrated device models. Asserted shape facts from the paper:
CereSZ wins everywhere; the speedup over cuSZp sits in the 2.43x-10.98x
band; SZ stays under 1 GB/s; throughput falls as the bound tightens.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.harness import format_table
from repro.harness.figures import fig11_compression_throughput

PAPER_AVERAGE = 457.35  # GB/s, paper Observation 1
PAPER_SPEEDUP = 4.97


def test_fig11(benchmark, record_result):
    bars = run_once(benchmark, fig11_compression_throughput)
    text = format_table(
        ["Dataset", "REL", "Compressor", "GB/s"],
        [
            [b.dataset, f"{b.rel:g}", b.compressor,
             f"{b.throughput_gbs:.2f}"]
            for b in bars
        ],
        title="Fig 11: Compression throughput (GB/s)",
    )
    ceresz = [b.throughput_gbs for b in bars if b.compressor == "CereSZ"]
    cuszp = [b.throughput_gbs for b in bars if b.compressor == "cuSZp"]
    avg = float(np.mean(ceresz))
    speedup = avg / float(np.mean(cuszp))
    footer = (
        f"\nCereSZ average: {avg:.2f} GB/s "
        f"(paper: {PAPER_AVERAGE}); speedup over cuSZp {speedup:.2f}x "
        f"(paper: {PAPER_SPEEDUP}x)"
    )
    record_result("fig11_compression_throughput", text + footer)

    groups = {}
    for b in bars:
        groups.setdefault((b.dataset, b.rel), {})[b.compressor] = (
            b.throughput_gbs
        )
    for key, rates in groups.items():
        assert rates["CereSZ"] == max(rates.values()), key
        assert 2.0 <= rates["CereSZ"] / rates["cuSZp"] <= 12.0, key
        assert rates["SZ"] < 1.0
    assert 3.0 <= speedup <= 8.0
    assert 250 <= avg <= 900
