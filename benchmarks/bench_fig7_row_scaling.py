"""Fig 7: throughput vs number of PE rows (NYX temperature, block 32).

The paper's point: rows run independently, so throughput is exactly linear
in the row count.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import fig7_row_scaling, plan_placement_summary
from repro.harness.report import ascii_bar_chart


def test_fig7(benchmark, record_result):
    points = run_once(benchmark, fig7_row_scaling)
    text = ascii_bar_chart(
        [f"{p.rows:4d} rows" for p in points],
        [p.throughput_mbs for p in points],
        unit=" MB/s",
        title="Fig 7: Compression throughput vs PE rows (NYX temperature)",
    )
    placement = plan_placement_summary(
        strategy="rows", rows=4, cols=1, dataset="NYX"
    )
    record_result("fig7_row_scaling", text + "\n\n" + placement)
    assert "strategy=rows" in placement

    per_row = [p.throughput_mbs / p.rows for p in points]
    assert max(per_row) / min(per_row) < 1.0001  # strictly linear
